"""Adaptive-join benchmark: the cost of being wrong, with and without
mid-query re-optimization.

For each scenario a workload whose advisor pick flips under a seeded
estimate error is run three ways on identical data:

* ``static_correct`` — the plan the advisor picks with *accurate*
  estimates (the oracle pick);
* ``static_mispick`` — the plan it picks under the injected error,
  run to completion (what a non-adaptive engine would pay);
* ``adaptive`` — :class:`~repro.adaptive.AdaptiveJoin` starting from
  the same wrong estimate, switching at the checkpoint where the
  observed statistics expose the error.

All times are *simulated* seconds from the priced traces, so they are
deterministic and the invariant gate is exact: adaptive must land
strictly between the correct pick and the mispick — it pays for the
abandoned work and the switch (worse than clairvoyance) but escapes
the mispicked plan (far better than stubbornness)::

    PYTHONPATH=src python benchmarks/bench_adaptive.py \
        --out benchmarks/results/BENCH_adaptive.json

    # CI smoke: one scenario, gate on the orderings
    PYTHONPATH=src python benchmarks/bench_adaptive.py --quick \
        --check benchmarks/results/BENCH_adaptive.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional

#: (name, generator seed, workers, (sigma_t_factor, sigma_l_factor)).
#: Seeds chosen so the error flips the advisor to a DB-side mispick
#: that the observed runtime statistics then overturn mid-scan.
SCENARIOS = (
    ("sigma_l_under_10x", 2005, 4, (1.0, 0.1)),
    ("sigma_l_under_10x_bf", 2016, 4, (1.0, 0.1)),
    ("sigma_l_under_10x_zigzag", 2014, 4, (1.0, 0.1)),
    ("sigma_l_under_10x_wide", 2025, 30, (1.0, 0.1)),
)


def _run_scenario(name: str, seed: int, workers: int, errors) -> Dict:
    from repro.core.joins import AdaptiveJoin, algorithm_by_name
    from repro.testkit import generator, oracle

    case = generator.generate_data_case(seed)

    def warehouse():
        return generator.build_cell_warehouse(case, workers, "parquet")

    adaptive = AdaptiveJoin(estimate_errors=errors).run(
        warehouse(), case.query
    )
    report = adaptive.trace.metadata["adaptive"]
    mispick_name = report["initial_algorithm"]
    correct_name = report["final_algorithm"]
    mispick = algorithm_by_name(mispick_name).run(warehouse(), case.query)
    correct = algorithm_by_name(correct_name).run(warehouse(), case.query)
    diff = oracle.compare_tables(
        adaptive.result, case.oracle_rows(), label=f"adaptive/{name}"
    )

    t_adaptive = adaptive.timing.total_seconds
    t_mispick = mispick.timing.total_seconds
    t_correct = correct.timing.total_seconds
    return {
        "seed": seed,
        "workers": workers,
        "estimate_errors": list(errors),
        "switched": report["switched"],
        "switch_at_progress": (
            report["switches"][0]["at_progress"]
            if report["switched"] else None
        ),
        "path": report["path"],
        "static_correct": correct_name,
        "static_mispick": mispick_name,
        "correct_seconds": round(t_correct, 3),
        "mispick_seconds": round(t_mispick, 3),
        "adaptive_seconds": round(t_adaptive, 3),
        "regret_vs_correct": round(t_adaptive - t_correct, 3),
        "saved_vs_mispick": round(t_mispick - t_adaptive, 3),
        "strictly_between": t_correct < t_adaptive < t_mispick,
        "oracle_identical": diff is None,
    }


def run_adaptive_bench(quick: bool = False) -> Dict:
    scenarios = SCENARIOS[:1] if quick else SCENARIOS
    results = {}
    for name, seed, workers, errors in scenarios:
        results[name] = _run_scenario(name, seed, workers, errors)
    return {
        "benchmark": "adaptive",
        "mode": "quick" if quick else "full",
        "scenarios": results,
    }


def render(payload: Dict) -> str:
    lines = [f"adaptive re-optimization benchmark ({payload['mode']})", ""]
    header = (f"{'scenario':<26} {'correct':>9} {'adaptive':>9} "
              f"{'mispick':>9}  path")
    lines += [header, "-" * len(header)]
    for name, row in payload["scenarios"].items():
        lines.append(
            f"{name:<26} {row['correct_seconds']:>8.1f}s "
            f"{row['adaptive_seconds']:>8.1f}s "
            f"{row['mispick_seconds']:>8.1f}s  "
            f"{'->'.join(row['path'])}"
        )
    for name, row in payload["scenarios"].items():
        if not row["strictly_between"]:
            lines.append(f"  WARNING: {name} not strictly between "
                         "the static plans")
        if not row["oracle_identical"]:
            lines.append(f"  WARNING: {name} diverged from the oracle")
    return "\n".join(lines)


def check_invariants(payload: Dict, baseline: Dict) -> List[str]:
    """Ordering gates vs the checked-in baseline (not exact times).

    Every scenario present in both payloads must (still) switch, stay
    oracle-identical, and land strictly between its static plans.
    """
    failures = []
    for name, row in payload["scenarios"].items():
        if name not in baseline.get("scenarios", {}):
            continue
        if not row["switched"]:
            failures.append(f"{name}: adaptive run no longer switches")
        if not row["oracle_identical"]:
            failures.append(f"{name}: result diverged from the oracle")
        if not row["strictly_between"]:
            failures.append(
                f"{name}: adaptive {row['adaptive_seconds']}s not "
                f"strictly between correct {row['correct_seconds']}s "
                f"and mispick {row['mispick_seconds']}s"
            )
    return failures


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--out", help="write the JSON payload to this path")
    parser.add_argument("--quick", action="store_true",
                        help="first scenario only, for CI smoke runs")
    parser.add_argument(
        "--check", metavar="BASELINE",
        help="verify the switch/ordering invariants against a baseline "
             "JSON; exit 1 on violation",
    )


def run_from_args(args) -> int:
    payload = run_adaptive_bench(quick=args.quick)
    print(render(payload))
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {out}")
    if args.check:
        baseline = json.loads(pathlib.Path(args.check).read_text())
        failures = check_invariants(payload, baseline)
        if failures:
            print("\nadaptive invariant violations:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"\nall switch/ordering invariants hold vs {args.check}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.adaptive",
        description="Mid-query re-optimization vs the static plans",
    )
    add_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
