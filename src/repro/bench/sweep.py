"""Generic parameter sweeps over the join algorithms.

The registered experiments reproduce the paper's exact grids; this
module is the open-ended version — sweep any combination of σ_T, σ_L,
S_T′, S_L′ and storage format over any algorithm set, and get back rows
ready for :func:`repro.bench.reporting.format_series` or the ASCII
figure renderer.  Powers ``python -m repro sweep``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import WarehouseCache
from repro.core.joins import algorithm_by_name
from repro.errors import ReproError, WorkloadError


@dataclass(frozen=True)
class SweepPoint:
    """One (σ_T, σ_L, S_T′, S_L′, format) combination."""

    sigma_t: float
    sigma_l: float
    s_t: Optional[float] = None
    s_l: Optional[float] = 0.1
    format_name: str = "parquet"

    def label(self) -> str:
        """Compact rendering for tables."""
        parts = [f"sT={self.sigma_t:g}", f"sL={self.sigma_l:g}"]
        if self.s_t is not None:
            parts.append(f"ST'={self.s_t:g}")
        if self.s_l is not None:
            parts.append(f"SL'={self.s_l:g}")
        if self.format_name != "parquet":
            parts.append(self.format_name)
        return " ".join(parts)


@dataclass
class SweepResult:
    """All rows of one sweep plus any skipped (infeasible) points."""

    rows: List[Dict] = field(default_factory=list)
    skipped: List[Tuple[SweepPoint, str]] = field(default_factory=list)

    def seconds(self, point_label: str, algorithm: str) -> float:
        """Simulated seconds for one (point, algorithm) cell."""
        for row in self.rows:
            if row["point"] == point_label and \
                    row["algorithm"] == algorithm:
                return row["seconds"]
        raise ReproError(
            f"no sweep row for {point_label!r} / {algorithm!r}"
        )

    def winners(self) -> Dict[str, str]:
        """Fastest algorithm per sweep point."""
        best: Dict[str, Tuple[str, float]] = {}
        for row in self.rows:
            current = best.get(row["point"])
            if current is None or row["seconds"] < current[1]:
                best[row["point"]] = (row["algorithm"], row["seconds"])
        return {point: name for point, (name, _s) in best.items()}


def run_sweep(
    points: Sequence[SweepPoint],
    algorithms: Sequence[str],
    cache: Optional[WarehouseCache] = None,
) -> SweepResult:
    """Run every algorithm at every point.

    Points whose selectivity combination the workload generator rejects
    are recorded in ``skipped`` rather than aborting the sweep.
    """
    if not points:
        raise ReproError("sweep needs at least one point")
    if not algorithms:
        raise ReproError("sweep needs at least one algorithm")
    cache = cache or WarehouseCache()
    result = SweepResult()
    for point in points:
        try:
            setup = cache.setup(
                point.sigma_t, point.sigma_l,
                s_t=point.s_t, s_l=point.s_l,
                format_name=point.format_name,
            )
        except WorkloadError as error:
            result.skipped.append((point, str(error)))
            continue
        for name in algorithms:
            run = algorithm_by_name(name).run(
                setup.warehouse, setup.query
            )
            paper = run.paper_stats()
            result.rows.append({
                "point": point.label(),
                "sigma_T": point.sigma_t,
                "sigma_L": point.sigma_l,
                "format": point.format_name,
                "algorithm": name,
                "seconds": run.total_seconds,
                "shuffled_M": paper.hdfs_tuples_shuffled / 1e6,
                "db_sent_M": paper.db_tuples_sent / 1e6,
            })
    return result


def grid(sigma_ts: Sequence[float], sigma_ls: Sequence[float],
         s_l: float = 0.1, format_name: str = "parquet"
         ) -> List[SweepPoint]:
    """The cartesian σ_T × σ_L grid the paper's figures use."""
    return [
        SweepPoint(sigma_t=sigma_t, sigma_l=sigma_l, s_l=s_l,
                   format_name=format_name)
        for sigma_t in sigma_ts
        for sigma_l in sigma_ls
    ]
