"""Approximate-join benchmark: sampled speedup and interval honesty.

One scan-dominated workload (small T, large L, few JEN workers — the
regime where the HDFS scan owns the critical path) is joined exactly
once with the repartition baseline, then approximately across the
:data:`SAMPLE_RATES` axis.  Every run is deterministic simulated time,
so ``--check`` gates on exact numbers:

* **speedup** — baseline simulated seconds / approximate simulated
  seconds.  At every sample rate at or below 25% the approximate run
  must be no slower than the exact baseline
  (:data:`SPEEDUP_FLOOR`, the ISSUE's acceptance bar); on this
  scan-dominated workload it is in fact several times faster.
* **ci_contains_reference** — every confidence interval the run reports
  must contain the exact answer from
  :func:`repro.query.executor.reference_aggregate_cells`.  A single
  seeded run is one draw, not a coverage rate (that contract lives in
  ``tests/test_approx.py``), but the draw is deterministic: if the
  checked-in seed covers, it covers forever.
* the **rate-1.0 cell** must be bit-exact against the reference join —
  sampling everything is the exact algorithm.

::

    PYTHONPATH=src python benchmarks/bench_approx.py \
        --out benchmarks/results/BENCH_approx.json

    # CI smoke: the 25% cell only, gated on the checked-in baseline
    PYTHONPATH=src python benchmarks/bench_approx.py --quick \
        --check benchmarks/results/BENCH_approx.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional

#: Sampled fractions of the HDFS blocks; 1.0 is the exactness check.
SAMPLE_RATES = (0.1, 0.25, 0.5, 1.0)

#: Hard acceptance floor: at sample rates <= 0.25 the approximate run
#: must be at least this much faster than exact repartition.
SPEEDUP_FLOOR = 1.0

#: The sample rate the ``--quick`` CI smoke exercises.
QUICK_RATE = 0.25

#: Scan-dominated workload: few EDW rows, many HDFS rows, few workers,
#: so ``hdfs_scan`` (the phase sampling shrinks) owns the critical path.
CASE_SEED = 12
T_ROWS = 60
L_ROWS = 48_000
WORKERS = 2

#: Interval confidence and block-sampling seed of the measured runs.
#: The seed is a fixed covering draw: one seeded run is a single
#: Bernoulli(0.95) trial per cell, so an unlucky seed can (honestly)
#: miss — the *rate* contract is tested across hundreds of seeds in
#: ``tests/test_approx.py``; the bench pins a draw whose intervals
#: contain the truth so the gate stays deterministic.
CONFIDENCE = 0.95
SAMPLE_SEED = 11


def _build():
    from repro.testkit import generator

    case = generator.generate_data_case(
        CASE_SEED, t_rows=T_ROWS, l_rows=L_ROWS)
    warehouse = generator.build_cell_warehouse(case, WORKERS, "parquet")
    return case, warehouse


def _reference_cells(case) -> Dict:
    from repro.query.executor import reference_aggregate_cells

    return reference_aggregate_cells(case.t_table, case.l_table, case.query)


def _run_rate(case, warehouse, reference, baseline_seconds: float,
              sample_rate: float) -> Dict:
    from repro.approx import ApproxJoin
    from repro.testkit import oracle

    join = ApproxJoin(sample_rate=sample_rate, confidence=CONFIDENCE,
                      seed=SAMPLE_SEED)
    run = join.run(warehouse, case.query)
    estimate = join.last_estimate
    contained = 0
    missed: List[str] = []
    for (group, name), truth in reference.items():
        if name in estimate.unsupported:
            continue
        cell = estimate.cells.get((group, name))
        if cell is not None and cell.contains(truth):
            contained += 1
        else:
            missed.append(f"{group}/{name}")
    exact_identical = None
    if estimate.exact:
        exact_identical = oracle.compare_tables(
            run.result, case.oracle_rows(),
            label=f"approx@{sample_rate:g}") is None
    checked = contained + len(missed)
    return {
        "sample_rate": sample_rate,
        "e2e_seconds": round(run.total_seconds, 3),
        "speedup": round(baseline_seconds / max(run.total_seconds, 1e-9), 3),
        "fraction_scanned": round(estimate.fraction_scanned, 4),
        "blocks": f"{estimate.blocks_scanned}/{estimate.blocks_total}",
        "hdfs_rows_scanned": int(run.stats.hdfs_rows_scanned),
        "tuples_shuffled": int(run.stats.hdfs_tuples_shuffled),
        "cells_checked": checked,
        "cells_contained": contained,
        "ci_contains_reference": not missed,
        "ci_misses": missed,
        "exact": estimate.exact,
        "exact_identical": exact_identical,
    }


def run_approx_bench(quick: bool = False) -> Dict:
    from repro import algorithm_by_name

    case, warehouse = _build()
    reference = _reference_cells(case)
    baseline = algorithm_by_name("repartition").run(warehouse, case.query)
    rates = (QUICK_RATE,) if quick else SAMPLE_RATES
    return {
        "benchmark": "approx",
        "mode": "quick" if quick else "full",
        "workload": {
            "case_seed": CASE_SEED,
            "t_rows": T_ROWS,
            "l_rows": L_ROWS,
            "workers": WORKERS,
            "confidence": CONFIDENCE,
            "sample_seed": SAMPLE_SEED,
        },
        "baseline": {
            "algorithm": "repartition",
            "e2e_seconds": round(baseline.total_seconds, 3),
            "hdfs_rows_scanned": int(baseline.stats.hdfs_rows_scanned),
        },
        "speedup_floor_at_25pct": SPEEDUP_FLOOR,
        "rates": {
            f"{rate:g}": _run_rate(
                case, warehouse, reference,
                baseline.total_seconds, rate)
            for rate in rates
        },
    }


def render(payload: Dict) -> str:
    base = payload["baseline"]
    lines = [
        f"approximate join benchmark ({payload['mode']} mode, "
        f"{payload['workload']['workers']} JEN workers, "
        f"confidence {payload['workload']['confidence']:g})",
        f"exact repartition baseline: {base['e2e_seconds']:.1f}s, "
        f"{base['hdfs_rows_scanned']} HDFS rows scanned",
        "",
    ]
    header = (f"{'rate':>6} {'e2e':>8} {'speedup':>8} {'scanned':>9} "
              f"{'blocks':>9} {'cells':>7} {'CI ok':>6} {'exact':>6}")
    lines += [header, "-" * len(header)]
    for rate, cell in payload["rates"].items():
        lines.append(
            f"{rate:>6} {cell['e2e_seconds']:>7.1f}s "
            f"{cell['speedup']:>7.2f}x "
            f"{cell['hdfs_rows_scanned']:>9d} "
            f"{cell['blocks']:>9} "
            f"{cell['cells_contained']:>3d}/{cell['cells_checked']:<3d} "
            f"{'yes' if cell['ci_contains_reference'] else 'NO':>6} "
            f"{'yes' if cell['exact'] else '-':>6}"
        )
    return "\n".join(lines)


def check_regression(current: Dict, baseline: Dict,
                     allowed_factor: float = 2.0) -> List[str]:
    """Hard acceptance gates plus ratio gates vs the checked-in payload.

    The hard gates do not soften with the baseline: intervals must
    contain the reference answer, rate 1.0 must be exact, and every
    rate at or below 25% must hit :data:`SPEEDUP_FLOOR`.  The ratio
    gate catches silent erosion — a cell fails when its speedup falls
    below ``baseline_speedup / allowed_factor``.
    """
    failures: List[str] = []
    baseline_rates = baseline.get("rates", {})
    for rate, cell in current.get("rates", {}).items():
        if not cell["ci_contains_reference"]:
            failures.append(
                f"rate {rate}: interval missed the reference answer "
                f"for {', '.join(cell['ci_misses'])}")
        if float(rate) <= QUICK_RATE and \
                float(cell["speedup"]) < SPEEDUP_FLOOR:
            failures.append(
                f"rate {rate}: speedup {cell['speedup']:.2f}x below "
                f"the hard {SPEEDUP_FLOOR:g}x floor")
        if float(rate) >= 1.0 and cell.get("exact_identical") is not True:
            failures.append(
                f"rate {rate}: full sample did not reproduce the exact "
                "answer bit-for-bit")
        base_cell = baseline_rates.get(rate)
        if base_cell is None:
            continue
        floor = float(base_cell["speedup"]) / allowed_factor
        if float(rate) <= QUICK_RATE and float(cell["speedup"]) < floor:
            failures.append(
                f"rate {rate}: speedup {cell['speedup']:.2f}x fell below "
                f"{floor:.2f}x (baseline {base_cell['speedup']:.2f}x / "
                f"{allowed_factor:g})")
    return failures


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--out", help="write the JSON payload to this path")
    parser.add_argument("--quick", action="store_true",
                        help="the 25%% cell only, for CI smoke runs")
    parser.add_argument(
        "--check", metavar="BASELINE",
        help="gate speedup and interval containment against a baseline "
             "JSON; exit 1 on violation",
    )
    parser.add_argument("--allowed-factor", type=float, default=2.0,
                        help="regression tolerance for --check")


def run_from_args(args) -> int:
    payload = run_approx_bench(quick=args.quick)
    print(render(payload))
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {out}")
    if args.check:
        baseline = json.loads(pathlib.Path(args.check).read_text())
        failures = check_regression(
            payload, baseline, allowed_factor=args.allowed_factor)
        if failures:
            print("\napprox-tier regressions:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"\nall approx gates hold vs {args.check} "
              f"(tolerance {args.allowed_factor:g}x)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.approx",
        description="Approximate joins vs exact repartition: speedup "
                    "and interval honesty",
    )
    add_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
