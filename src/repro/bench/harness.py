"""Warehouse construction and caching for the experiment sweeps.

Each figure sweeps several (σ, S) settings; building a workload and
loading both engines is the expensive part, so :class:`WarehouseCache`
memoises fully loaded warehouses keyed by the workload spec, the storage
format and the data-plane scale.  Simulated times are independent of the
materialised scale (volumes are rescaled before pricing), so benchmarks
default to a smaller data plane than the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import HybridConfig, default_config
from repro.core.joins.base import JoinResult
from repro.core.joins import algorithm_by_name
from repro.warehouse import HybridWarehouse
from repro.workload import (
    Workload,
    WorkloadSpec,
    build_paper_query,
    generate_workload,
)
from repro.query.query import HybridQuery

#: Default benchmark data-plane size: 1/25,000 of paper scale keeps a
#: full figure sweep under a few seconds while the simulated results
#: stay at paper scale.
BENCH_SCALE = 1.0 / 25_000.0


@dataclass
class BenchSetup:
    """A loaded warehouse plus the query for one experiment point."""

    warehouse: HybridWarehouse
    query: HybridQuery
    workload: Workload


def make_spec(sigma_t: float, sigma_l: float,
              s_t: Optional[float] = None, s_l: Optional[float] = None,
              scale: float = BENCH_SCALE) -> WorkloadSpec:
    """A workload spec at the given fraction of the paper's table sizes."""
    return WorkloadSpec(
        sigma_t=sigma_t,
        sigma_l=sigma_l,
        s_t=s_t,
        s_l=s_l,
        t_rows=max(1000, int(1_600_000_000 * scale)),
        l_rows=max(10_000, int(15_000_000_000 * scale)),
        n_keys=max(100, int(16_000_000 * scale)),
    )


def build_setup(spec: WorkloadSpec, format_name: str = "parquet",
                scale: float = BENCH_SCALE,
                config: Optional[HybridConfig] = None) -> BenchSetup:
    """Generate the workload and load both engines (uncached)."""
    config = config or default_config(scale=scale)
    workload = generate_workload(spec)
    warehouse = HybridWarehouse(config)
    warehouse.load_db_table("T", workload.t_table, distribute_on="uniqKey")
    # The paper's two indexes (Section 5): predicate evaluation and the
    # index-only Bloom-filter plan.
    warehouse.database.create_index("T", "idx_pred", ["corPred", "indPred"])
    warehouse.database.create_index(
        "T", "idx_bloom", ["corPred", "indPred", "joinKey"]
    )
    warehouse.load_hdfs_table("L", workload.l_table, format_name)
    return BenchSetup(
        warehouse=warehouse,
        query=build_paper_query(workload),
        workload=workload,
    )


class WarehouseCache:
    """Memoised :func:`build_setup` keyed by (spec, format, scale)."""

    def __init__(self, scale: float = BENCH_SCALE):
        self.scale = scale
        self._cache: Dict[Tuple, BenchSetup] = {}

    def setup(self, sigma_t: float, sigma_l: float,
              s_t: Optional[float] = None, s_l: Optional[float] = None,
              format_name: str = "parquet") -> BenchSetup:
        """A loaded warehouse for these parameters (cached)."""
        key = (sigma_t, sigma_l, s_t, s_l, format_name, self.scale)
        if key not in self._cache:
            spec = make_spec(sigma_t, sigma_l, s_t, s_l, scale=self.scale)
            self._cache[key] = build_setup(
                spec, format_name=format_name, scale=self.scale
            )
        return self._cache[key]

    def clear(self) -> None:
        """Drop all cached warehouses."""
        self._cache.clear()


def run_algorithms(setup: BenchSetup, names: List[str]
                   ) -> Dict[str, JoinResult]:
    """Run the named algorithms on one setup."""
    return {
        name: algorithm_by_name(name).run(setup.warehouse, setup.query)
        for name in names
    }
