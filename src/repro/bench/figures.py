"""ASCII rendering of experiment results in the paper's figure style.

The paper's figures are grouped bar charts (algorithms side by side per
x value, seconds on the y axis).  :func:`render_grouped_bars` produces a
terminal rendition of the same shape so the reproduction's output can be
eyeballed against the paper without a plotting stack:

::

    Figure 8a (seconds)
    sigma_L=0.1  repartition      |############################  181.7
                 repartition(BF)  |############################  181.7
                 zigzag           |##########                     63.3
    sigma_L=0.2  ...
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError

#: Width (characters) of a bar representing the largest value.
DEFAULT_BAR_WIDTH = 42


def render_grouped_bars(
    rows: Sequence[Dict],
    group_key: str,
    series_key: str,
    value_key: str,
    title: str = "",
    bar_width: int = DEFAULT_BAR_WIDTH,
    panel_key: Optional[str] = None,
) -> str:
    """Render rows as grouped horizontal bars, one panel at a time."""
    if not rows:
        raise ReproError("no rows to render")
    lines: List[str] = []
    if title:
        lines.append(title)
    panels = (
        list(dict.fromkeys(row[panel_key] for row in rows))
        if panel_key else [None]
    )
    for panel in panels:
        panel_rows = [
            row for row in rows
            if panel_key is None or row[panel_key] == panel
        ]
        if panel is not None:
            lines.append(f"panel {panel}:")
        lines.extend(
            _render_panel(panel_rows, group_key, series_key, value_key,
                          bar_width)
        )
        lines.append("")
    return "\n".join(lines).rstrip()


def _render_panel(rows, group_key, series_key, value_key, bar_width):
    groups = list(dict.fromkeys(row[group_key] for row in rows))
    series = list(dict.fromkeys(row[series_key] for row in rows))
    peak = max(float(row[value_key]) for row in rows)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(str(name)) for name in series)
    group_width = max(len(f"{group_key}={g}") for g in groups)

    lines: List[str] = []
    for group in groups:
        first = True
        for name in series:
            matches = [
                row for row in rows
                if row[group_key] == group and row[series_key] == name
            ]
            if not matches:
                continue
            value = float(matches[0][value_key])
            bar = "#" * max(1, round(value / peak * bar_width))
            group_label = f"{group_key}={group}" if first else ""
            first = False
            lines.append(
                f"{group_label:<{group_width}}  "
                f"{str(name):<{label_width}}  |{bar:<{bar_width}} "
                f"{value:8.1f}"
            )
        lines.append("")
    if lines and not lines[-1]:
        lines.pop()
    return lines


def render_experiment(result, bar_width: int = DEFAULT_BAR_WIDTH) -> str:
    """Best-effort figure rendering of an :class:`ExperimentResult`.

    Uses the conventional column names the experiments emit; falls back
    to the plain table when the rows don't have a bar-chart shape.
    """
    rows = result.rows
    if not rows or "seconds" not in rows[0]:
        return result.to_table()
    candidates = [key for key in ("sigma_L", "value", "S_T'", "budget_"
                                  "rows_per_worker", "filter_mb", "scheme")
                  if key in rows[0]]
    series_key = "algorithm" if "algorithm" in rows[0] else None
    if series_key is None or not candidates:
        return result.to_table()
    return render_grouped_bars(
        rows,
        group_key=candidates[0],
        series_key=series_key,
        value_key="seconds",
        title=result.title,
        bar_width=bar_width,
        panel_key="panel" if "panel" in rows[0] else None,
    )
