"""Skew benchmark: worker-finish spread and e2e time, hybrid on/off.

For each key skew in :data:`KEY_SKEWS` a Zipf-distributed workload is
joined twice on identical data — hash-only shuffle (skew handling off)
and the hybrid shuffle (heavy-hitter detection + bounded-fan-out split
+ straggler stealing) — and both runs are verified against the
single-node oracle before anything is recorded.  Two numbers per run:

* **spread** — p99/p50 of the per-worker local-join loads the engine
  actually measured (``trace.metadata["join_slot_loads"]``), i.e. how
  long the last worker runs past the median one;
* **e2e_seconds** — simulated end-to-end seconds from the priced trace,
  which includes everything the skew plane costs (probe-side hot-row
  duplication, the steal transfers) as well as what it saves.

All times are simulated and deterministic, so ``--check`` gates on
ratios against the checked-in baseline plus one hard acceptance floor:
at ``key_skew=1.8`` the hybrid shuffle must cut the p99/p50 spread by
at least :data:`SPREAD_IMPROVEMENT_FLOOR` (2x)::

    PYTHONPATH=src python benchmarks/bench_skew.py \
        --out benchmarks/results/BENCH_skew.json

    # CI smoke: heaviest skew cell only, gate on the baseline
    PYTHONPATH=src python benchmarks/bench_skew.py --quick \
        --check benchmarks/results/BENCH_skew.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
from typing import Dict, List, Optional

import numpy as np

#: The skew axis: uniform, moderate Zipf, heavy Zipf (paper-style).
KEY_SKEWS = (0.0, 1.2, 1.8)

#: Shuffle-using algorithms measured in full mode; the first is the
#: canonical repartition join the acceptance gate reads.
ALGORITHMS = ("repartition", "zigzag")

#: Hard acceptance floor: at key_skew=1.8 the hybrid shuffle must cut
#: the p99/p50 worker-finish spread by at least this factor.
SPREAD_IMPROVEMENT_FLOOR = 2.0

#: JEN workers; skew only materialises with enough of them.
WORKERS = 30

#: Distinct join keys in the skewed cases (must match
#: ``testkit.generator.skewed_case``).
N_KEYS = 64


def _spread(trace) -> float:
    """p99/p50 of the measured per-worker local-join loads."""
    loads = np.asarray(trace.metadata["join_slot_loads"], dtype=float)
    return float(np.percentile(loads, 99) / max(np.percentile(loads, 50), 1))


def _run_cell(key_skew: float, algorithm: str) -> Dict:
    from repro import algorithm_by_name
    from repro.skew import set_skew_handling_enabled
    from repro.testkit import generator, oracle
    from repro.workload.generator import zipf_skew_factor

    case = generator.skewed_case(key_skew)
    reference = case.oracle_rows()
    warehouse = generator.build_cell_warehouse(case, WORKERS, "parquet")
    # The hash-only run pays the analytic skew factor of the generated
    # Zipf distribution; the hybrid run pays what it measures.
    warehouse.config = dataclasses.replace(
        warehouse.config,
        shuffle_skew=zipf_skew_factor(key_skew, N_KEYS, WORKERS),
    )
    cell: Dict[str, object] = {
        "key_skew": key_skew,
        "workers": WORKERS,
        "configured_skew": round(
            zipf_skew_factor(key_skew, N_KEYS, WORKERS), 3),
    }
    for label, enabled in (("hash_only", False), ("hybrid", True)):
        previous = set_skew_handling_enabled(enabled)
        try:
            run = algorithm_by_name(algorithm).run(warehouse, case.query)
        finally:
            set_skew_handling_enabled(previous)
        diff = oracle.compare_tables(
            run.result, reference,
            label=f"{algorithm}/skew{key_skew:g}/{label}",
        )
        if diff is not None:
            raise AssertionError(diff)
        cell[label] = {
            "spread_p99_p50": round(_spread(run.trace), 3),
            "e2e_seconds": round(run.timing.total_seconds, 3),
            "hot_keys_detected": int(run.stats.hot_keys_detected),
            "hot_tuples_rerouted": int(run.stats.hot_tuples_rerouted),
            "hot_tuples_broadcast": int(run.stats.hot_tuples_broadcast),
            "stolen_tuples": int(run.stats.stolen_tuples),
            "oracle_identical": True,
        }
    off = cell["hash_only"]
    on = cell["hybrid"]
    cell["spread_improvement"] = round(
        off["spread_p99_p50"] / max(on["spread_p99_p50"], 1e-9), 3)
    cell["e2e_speedup"] = round(
        off["e2e_seconds"] / max(on["e2e_seconds"], 1e-9), 3)
    return cell


def run_skew_bench(quick: bool = False) -> Dict:
    key_skews = KEY_SKEWS[-1:] if quick else KEY_SKEWS
    algorithms = ALGORITHMS[:1] if quick else ALGORITHMS
    results: Dict[str, Dict] = {}
    for algorithm in algorithms:
        results[algorithm] = {
            f"{key_skew:g}": _run_cell(key_skew, algorithm)
            for key_skew in key_skews
        }
    return {
        "benchmark": "skew",
        "mode": "quick" if quick else "full",
        "workers": WORKERS,
        "spread_floor_at_1.8": SPREAD_IMPROVEMENT_FLOOR,
        "algorithms": results,
    }


def render(payload: Dict) -> str:
    lines = [
        f"skew-resistant shuffle benchmark ({payload['mode']} mode, "
        f"{payload['workers']} JEN workers)",
        "",
    ]
    header = (f"{'cell':<24} {'spread off':>10} {'spread on':>10} "
              f"{'improve':>8} {'e2e off':>8} {'e2e on':>8} "
              f"{'stolen':>7}")
    lines += [header, "-" * len(header)]
    for algorithm, cells in payload["algorithms"].items():
        for key_skew, cell in cells.items():
            off, on = cell["hash_only"], cell["hybrid"]
            lines.append(
                f"{algorithm + ' @ zipf ' + key_skew:<24} "
                f"{off['spread_p99_p50']:>10.2f} "
                f"{on['spread_p99_p50']:>10.2f} "
                f"{cell['spread_improvement']:>7.1f}x "
                f"{off['e2e_seconds']:>7.1f}s "
                f"{on['e2e_seconds']:>7.1f}s "
                f"{on['stolen_tuples']:>7d}"
            )
    return "\n".join(lines)


def check_regression(current: Dict, baseline: Dict,
                     allowed_factor: float = 2.0) -> List[str]:
    """Ratio gates vs the checked-in baseline.

    Simulated seconds are deterministic, but the gate is still
    ratio-based so a deliberate re-pricing of an unrelated phase does
    not trip it: a cell fails only when its spread improvement falls
    below ``baseline_improvement / allowed_factor`` — or below the hard
    :data:`SPREAD_IMPROVEMENT_FLOOR` at ``key_skew=1.8``, which is the
    acceptance bar and does not soften with the baseline.
    """
    failures: List[str] = []
    for algorithm, cells in current.get("algorithms", {}).items():
        baseline_cells = baseline.get("algorithms", {}).get(algorithm, {})
        for key_skew, cell in cells.items():
            for mode in ("hash_only", "hybrid"):
                if not cell[mode]["oracle_identical"]:
                    failures.append(
                        f"{algorithm}@{key_skew}/{mode}: diverged "
                        "from the oracle")
            improvement = float(cell["spread_improvement"])
            if float(key_skew) >= 1.8 and \
                    improvement < SPREAD_IMPROVEMENT_FLOOR:
                failures.append(
                    f"{algorithm}@{key_skew}: spread improvement "
                    f"{improvement:.2f}x below the hard "
                    f"{SPREAD_IMPROVEMENT_FLOOR:g}x floor")
            base_cell = baseline_cells.get(key_skew)
            if base_cell is None:
                continue
            base_improvement = float(base_cell["spread_improvement"])
            floor = base_improvement / allowed_factor
            # Uniform cells hover around 1x; only gate real headroom.
            if base_improvement >= SPREAD_IMPROVEMENT_FLOOR and \
                    improvement < floor:
                failures.append(
                    f"{algorithm}@{key_skew}: spread improvement "
                    f"{improvement:.2f}x fell below {floor:.2f}x "
                    f"(baseline {base_improvement:.2f}x / "
                    f"{allowed_factor:g})")
    return failures


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--out", help="write the JSON payload to this path")
    parser.add_argument("--quick", action="store_true",
                        help="heaviest skew cell only, for CI smoke runs")
    parser.add_argument(
        "--check", metavar="BASELINE",
        help="gate spread-improvement ratios against a baseline JSON; "
             "exit 1 on violation",
    )
    parser.add_argument("--allowed-factor", type=float, default=2.0,
                        help="regression tolerance for --check")


def run_from_args(args) -> int:
    payload = run_skew_bench(quick=args.quick)
    print(render(payload))
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {out}")
    if args.check:
        baseline = json.loads(pathlib.Path(args.check).read_text())
        failures = check_regression(
            payload, baseline, allowed_factor=args.allowed_factor)
        if failures:
            print("\nskew-plane regressions:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"\nall spread gates hold vs {args.check} "
              f"(tolerance {args.allowed_factor:g}x)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.skew",
        description="Hybrid shuffle vs hash-only on skewed workloads",
    )
    add_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
