"""Plain-text reporting of experiment results in the paper's layout."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_rows(headers: Sequence[str], rows: Sequence[Dict],
                title: str = "") -> str:
    """Fixed-width table of row dicts, in header order."""
    cells = [[_fmt(row.get(header, "")) for header in headers]
             for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in cells))
        if cells else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    ))
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append("  ".join(
            value.ljust(width) for value, width in zip(row, widths)
        ))
    return "\n".join(lines)


def format_series(rows: Sequence[Dict], x_key: str, y_key: str,
                  series_key: str, title: str = "") -> str:
    """Pivot rows into one line per series — the shape of a figure panel.

    Example output::

        fig12(a) sigma_T=0.05 — seconds by sigma_L
        db           46.9   47.2  169.4  336.5
        hdfs-best    47.7   48.3   53.1  102.4
    """
    x_values = list(dict.fromkeys(row[x_key] for row in rows))
    series = list(dict.fromkeys(row[series_key] for row in rows))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "".join(f"{_fmt(x):>10s}" for x in x_values)
    lines.append(f"{x_key + ' ->':<18s}{header}")
    for name in series:
        values = []
        for x in x_values:
            match = [row for row in rows
                     if row[x_key] == x and row[series_key] == name]
            values.append(_fmt(match[0][y_key]) if match else "-")
        lines.append(
            f"{str(name):<18s}" + "".join(f"{value:>10s}" for value in values)
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        if 0 < abs(value) < 1:
            return f"{value:g}"
        return f"{value:.1f}"
    return str(value)
