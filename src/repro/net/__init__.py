"""Network model of the hybrid warehouse.

Encodes the paper's physical layout (Section 5): an HDFS cluster on
1 Gbit Ethernet, a database cluster on 10 Gbit Ethernet, and a 20 Gbit
switch connecting the two, plus the volume math for the data-transfer
patterns of Figure 6 (grouped DB-side ingest, broadcast, and
agreed-hash direct sends).
"""

from repro.net.topology import Cluster, HybridTopology, default_topology
from repro.net.transfer import (
    TransferPattern,
    broadcast_volume,
    grouped_assignment,
    parallel_transfer_seconds,
    shuffle_seconds,
)

__all__ = [
    "Cluster",
    "HybridTopology",
    "TransferPattern",
    "broadcast_volume",
    "default_topology",
    "grouped_assignment",
    "parallel_transfer_seconds",
    "shuffle_seconds",
]
