"""Data-transfer patterns between DB2 workers and JEN workers.

Reproduces the volume math of the paper's Figure 6:

* **DB-side join**: the ``n`` JEN workers are split into ``m`` roughly
  even groups and each DB worker ingests from one group in parallel.
* **Broadcast join**: every DB worker sends its filtered partition to
  *every* JEN worker (the paper found the direct scheme beats relaying
  through one worker), so the bytes crossing the switch are
  ``|T'| * n``.
* **Repartition/zigzag joins**: DB workers use the agreed hash function
  and send each record directly to the JEN worker that will join it, so
  ``|T'|`` crosses the switch exactly once.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import SimulationError, TransferFaultError
from repro.net.topology import HybridTopology


class TransferPattern(enum.Enum):
    """How database data reaches JEN workers (paper Fig. 6)."""

    GROUPED_INGEST = "grouped_ingest"
    BROADCAST_DIRECT = "broadcast_direct"
    BROADCAST_RELAY = "broadcast_relay"
    AGREED_HASH_DIRECT = "agreed_hash_direct"


@dataclass(frozen=True)
class RetryPolicy:
    """Retry discipline for unreliable transfers (fault injection).

    A lost or truncated message is detected after ``timeout_seconds``
    (the per-transfer timeout), then re-sent after an exponentially
    growing backoff: failure *i* waits
    ``backoff_base_seconds * backoff_multiplier**(i-1)`` before the next
    attempt.  After ``max_attempts`` total attempts the transfer is
    abandoned with :class:`~repro.errors.TransferFaultError`.
    """

    max_attempts: int = 4
    timeout_seconds: float = 2.0
    backoff_base_seconds: float = 0.5
    backoff_multiplier: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise SimulationError("retry policy needs at least one attempt")
        if self.timeout_seconds < 0 or self.backoff_base_seconds < 0:
            raise SimulationError("retry timings must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise SimulationError("backoff multiplier must be >= 1")

    def backoff_seconds(self, failure_index: int) -> float:
        """Backoff slept after the ``failure_index``-th (1-based) loss."""
        if failure_index < 1:
            raise SimulationError("failure index is 1-based")
        return (self.backoff_base_seconds
                * self.backoff_multiplier ** (failure_index - 1))

    def retry_overhead_seconds(self, failures: int) -> float:
        """Extra seconds ``failures`` consecutive losses cost.

        Each loss burns the detection timeout plus its backoff; the
        final successful attempt's own transfer time is priced by the
        ordinary cost model, not here.
        """
        return sum(
            self.timeout_seconds + self.backoff_seconds(index)
            for index in range(1, failures + 1)
        )


def deliver_with_retry(payload, send, policy: RetryPolicy,
                       channel: str = "transfer",
                       sender: int = -1, destination: int = -1):
    """Drive ``send(payload, attempt)`` until it reports success.

    ``send`` returns an outcome string: ``"ok"`` (delivered), ``"dup"``
    (delivered but the acknowledgement was lost, so the payload arrives
    twice — the receiver must deduplicate), or ``"drop"``/``"trunc"``
    (lost or cut short in flight; retry).  Returns
    ``(outcome, attempts)`` for the terminal attempt; raises
    :class:`~repro.errors.TransferFaultError` once the policy's attempt
    budget is exhausted.
    """
    attempts = 0
    while True:
        attempts += 1
        outcome = send(payload, attempts)
        if outcome in ("ok", "dup"):
            return outcome, attempts
        if outcome not in ("drop", "trunc"):
            raise SimulationError(f"unknown delivery outcome {outcome!r}")
        if attempts >= policy.max_attempts:
            raise TransferFaultError(
                f"{channel} transfer {sender}->{destination} lost "
                f"{attempts} times (retry budget exhausted)",
                channel=channel, sender=sender, destination=destination,
                attempts=attempts,
            )


def grouped_assignment(num_jen_workers: int, num_db_workers: int
                       ) -> List[List[int]]:
    """Partition JEN workers into one group per DB worker.

    The paper's coordinator "evenly divides the n workers into m groups"
    (Section 4.1.1, assuming m <= n).  When there are more DB workers
    than JEN workers, groups of size one are reused round-robin so every
    DB worker still has an endpoint.
    """
    if num_jen_workers <= 0 or num_db_workers <= 0:
        raise SimulationError("both worker counts must be positive")
    if num_db_workers <= num_jen_workers:
        groups: List[List[int]] = [[] for _ in range(num_db_workers)]
        for worker in range(num_jen_workers):
            groups[worker % num_db_workers].append(worker)
        return groups
    return [[db % num_jen_workers] for db in range(num_db_workers)]


def broadcast_volume(
    filtered_db_bytes: float,
    num_jen_workers: int,
    pattern: TransferPattern = TransferPattern.BROADCAST_DIRECT,
) -> float:
    """Bytes crossing the inter-cluster switch for a broadcast of T'.

    The relay variant moves T' across the switch once but then pays an
    intra-HDFS re-broadcast (accounted separately by the cost layer);
    the direct variant multiplies the switch traffic by the number of
    JEN workers.
    """
    if pattern is TransferPattern.BROADCAST_DIRECT:
        return filtered_db_bytes * num_jen_workers
    if pattern is TransferPattern.BROADCAST_RELAY:
        return filtered_db_bytes
    raise SimulationError(f"not a broadcast pattern: {pattern}")


def encoded_transfer_volume(tables) -> int:
    """Measured bytes ``tables`` put on the wire in the compact codec.

    Late-materialization transfers (thin shuffles, stitch fetches) ship
    codec frames — varint/delta row ids, dictionary-id columns — rather
    than decoded rows; this is what those frames actually weigh.
    """
    from repro.kernels.wirecodec import encoded_table_bytes

    return sum(
        encoded_table_bytes(table) for table in tables if table.num_rows
    )


def parallel_transfer_seconds(
    volume_bytes: float,
    topology: HybridTopology,
    senders: int,
    receivers: int,
    sender_side: str,
    per_endpoint_bytes_per_s: float = float("inf"),
) -> float:
    """Seconds to move ``volume_bytes`` between the clusters in parallel.

    ``per_endpoint_bytes_per_s`` caps each sending endpoint's goodput
    below its NIC line rate — this is how the deliberately constrained
    UDF-based export/ingest paths of the EDW enter the model.
    """
    if volume_bytes < 0:
        raise SimulationError("negative transfer volume")
    if volume_bytes == 0:
        return 0.0
    network = topology.inter_cluster_bandwidth(senders, receivers, sender_side)
    endpoint_cap = senders * per_endpoint_bytes_per_s
    bandwidth = min(network, endpoint_cap)
    if bandwidth <= 0:
        raise SimulationError("transfer has zero available bandwidth")
    return volume_bytes / bandwidth


def shuffle_seconds(
    volume_bytes: float,
    topology: HybridTopology,
    workers: int,
    per_worker_goodput_bytes_per_s: float,
) -> float:
    """Seconds for an all-to-all shuffle of ``volume_bytes`` inside HDFS.

    Every worker both sends and receives ``volume / workers`` bytes;
    effective per-worker goodput (well below the NIC line rate for the
    small-record workloads of the paper) is supplied by the cost model.
    """
    if volume_bytes < 0:
        raise SimulationError("negative shuffle volume")
    if volume_bytes == 0:
        return 0.0
    workers = min(workers, topology.hdfs.nodes)
    if workers <= 0:
        raise SimulationError("shuffle needs at least one worker")
    per_worker = min(
        per_worker_goodput_bytes_per_s, topology.hdfs.nic_bytes_per_s
    )
    # A fraction 1/workers of the data is destined for the local worker
    # and never touches the NIC.
    remote_fraction = (workers - 1) / workers if workers > 1 else 0.0
    if remote_fraction == 0.0:
        return 0.0
    return (volume_bytes * remote_fraction) / (workers * per_worker)
