"""Clusters, links and the inter-cluster switch.

The topology object answers one kind of question for the cost layer:
"what is the aggregate bandwidth available to this transfer pattern?".
The per-phase *durations* are then computed in
:mod:`repro.core.joins.costing` and scheduled (with pipelining) by the
time plane.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ClusterConfig
from repro.errors import SimulationError


@dataclass(frozen=True)
class Cluster:
    """A homogeneous group of nodes with identical NICs."""

    name: str
    nodes: int
    nic_bytes_per_s: float

    def __post_init__(self):
        if self.nodes <= 0:
            raise SimulationError(f"cluster {self.name!r} needs nodes > 0")
        if self.nic_bytes_per_s <= 0:
            raise SimulationError(f"cluster {self.name!r} needs NIC bw > 0")

    def aggregate_nic_bytes_per_s(self) -> float:
        """Total NIC bandwidth across the cluster (one direction)."""
        return self.nodes * self.nic_bytes_per_s


@dataclass(frozen=True)
class HybridTopology:
    """The two clusters plus the switch between them (paper Section 5)."""

    hdfs: Cluster
    database: Cluster
    switch_bytes_per_s: float

    def __post_init__(self):
        if self.switch_bytes_per_s <= 0:
            raise SimulationError("switch bandwidth must be positive")

    def inter_cluster_bandwidth(
        self, senders: int, receivers: int, sender_side: str
    ) -> float:
        """Aggregate bandwidth for a transfer between the clusters.

        The bottleneck is the minimum of the senders' NICs, the receivers'
        NICs, and the switch.  ``sender_side`` is ``"hdfs"`` or ``"db"``.
        """
        if sender_side == "hdfs":
            source, target = self.hdfs, self.database
        elif sender_side == "db":
            source, target = self.database, self.hdfs
        else:
            raise SimulationError(
                f"sender_side must be 'hdfs' or 'db', got {sender_side!r}"
            )
        senders = min(senders, source.nodes)
        receivers = min(receivers, target.nodes)
        if senders <= 0 or receivers <= 0:
            raise SimulationError("transfer needs at least one node per side")
        return min(
            senders * source.nic_bytes_per_s,
            receivers * target.nic_bytes_per_s,
            self.switch_bytes_per_s,
        )

    def intra_hdfs_bandwidth(self, nodes: int) -> float:
        """Aggregate one-directional bandwidth for an all-to-all shuffle."""
        nodes = min(nodes, self.hdfs.nodes)
        return nodes * self.hdfs.nic_bytes_per_s


def default_topology(cluster: ClusterConfig) -> HybridTopology:
    """Build the paper's topology from a :class:`ClusterConfig`.

    DB2 workers share the NIC of the server they run on, so the database
    "cluster" is modelled at server granularity with per-server 10 Gbit
    NICs; the HDFS side has one 1 Gbit NIC per DataNode.
    """
    hdfs = Cluster(
        name="hdfs",
        nodes=cluster.hdfs_nodes,
        nic_bytes_per_s=cluster.hdfs_nic_bytes_per_s,
    )
    database = Cluster(
        name="db",
        nodes=cluster.db_servers,
        nic_bytes_per_s=cluster.db_nic_bytes_per_s,
    )
    return HybridTopology(
        hdfs=hdfs,
        database=database,
        switch_bytes_per_s=cluster.switch_bytes_per_s,
    )
