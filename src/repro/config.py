"""Cluster and cost-model configuration for the hybrid warehouse.

The defaults mirror the experimental setup of the paper (Section 5):

* HDFS cluster: 30 DataNodes (plus a NameNode), 4 data disks each,
  1 Gbit Ethernet between nodes, one JEN worker per DataNode.
* EDW: 5 servers running 6 DB2 DPF workers each (30 workers total),
  10 Gbit Ethernet, 11 data disks per server.
* The two clusters are connected by a 20 Gbit switch.
* Tables: ``T`` is 97 GB / 1.6 B rows in the database; ``L`` is 15 B rows,
  about 1 TB as text and 421 GB as Parquet, on HDFS.
* Bloom filters: 128 M bits (16 MB) with 2 hash functions over 16 M unique
  join keys, i.e. roughly a 5% false-positive rate.

The :class:`CostModel` holds the calibrated throughput constants used by
the time plane (:mod:`repro.sim`).  They are anchored on the two scan
numbers the paper reports directly — a warm 1 TB text scan takes about
240 s and a warm projected Parquet scan about 38 s — and tuned so the
relative behaviour of the join algorithms (who wins where, crossover
points, Bloom-filter benefit) matches the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: Number of bytes in one mebibyte; volumes inside the cost model are kept
#: in plain bytes and converted at the edges.
MB = 1024 * 1024
GB = 1024 * MB


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the two clusters and the interconnect (paper Section 5)."""

    #: HDFS DataNodes; one JEN worker runs on each.
    hdfs_nodes: int = 30
    #: Data disks per DataNode (the paper reserves 1 of 5 for the OS).
    hdfs_disks_per_node: int = 4
    #: HDFS replication factor.
    hdfs_replication: int = 2
    #: HDFS block size in bytes (128 MB, the Hadoop default of the era).
    hdfs_block_size: int = 128 * MB
    #: Total database workers (the paper runs 6 per server on 5 servers).
    db_workers: int = 30
    #: Physical database servers; workers on one server share its NIC.
    db_servers: int = 5
    #: Intra-HDFS NIC speed per node, bytes/s (1 Gbit Ethernet).
    hdfs_nic_bytes_per_s: float = 125.0 * MB
    #: Database NIC speed per server, bytes/s (10 Gbit Ethernet).
    db_nic_bytes_per_s: float = 1250.0 * MB
    #: Inter-cluster switch capacity, bytes/s (20 Gbit).
    switch_bytes_per_s: float = 2500.0 * MB

    def jen_workers(self) -> int:
        """One JEN worker per DataNode, as in the paper."""
        return self.hdfs_nodes


@dataclass(frozen=True)
class BloomFilterConfig:
    """Bloom filter parameters (paper Section 5: 128 M bits, k=2)."""

    #: Number of bits in each filter at paper scale.
    num_bits: int = 128 * 1024 * 1024
    #: Number of hash functions.
    num_hashes: int = 2

    def size_bytes(self) -> int:
        """Serialized size of one filter."""
        return self.num_bits // 8


@dataclass(frozen=True)
class CostModel:
    """Calibrated throughput constants for the time plane.

    All ``*_bytes_per_s`` figures are per participating worker unless noted;
    all ``*_tuples_per_s`` figures are per worker.  The time plane replays a
    measured execution trace against these constants with pipelining, so a
    phase that the paper overlaps (e.g. shuffling while scanning) genuinely
    overlaps in simulated time.
    """

    # --- HDFS scan side (JEN workers) ------------------------------------
    #: Warm text scan throughput per DataNode.  1 TB over 30 nodes in about
    #: 240 s is roughly 140 MB/s per node (paper Section 5.4).
    text_scan_bytes_per_s: float = 140.0 * MB
    #: Warm Parquet throughput per DataNode over the *projected, compressed*
    #: bytes.  The paper reads the needed fields of the 421 GB table in 38 s.
    parquet_scan_bytes_per_s: float = 220.0 * MB
    #: ORC throughput per DataNode over projected, compressed bytes —
    #: slightly slower decode than Parquet+Snappy in this era.
    orc_scan_bytes_per_s: float = 200.0 * MB
    #: Tuple parse/predicate/projection rate of a JEN process thread.  The
    #: paper notes this single thread "is never the bottleneck".
    jen_process_tuples_per_s: float = 30.0e6

    # --- Intra-HDFS shuffle ----------------------------------------------
    #: Effective per-node shuffle goodput.  Far below the 1 Gbit line rate
    #: because records are small and serialized by one process thread.
    shuffle_bytes_per_s: float = 30.0 * MB
    #: Hash-table insert rate per JEN worker (receive threads build as
    #: records arrive, overlapping the shuffle).
    hash_build_tuples_per_s: float = 8.0e6
    #: Hash-table probe rate per JEN worker, including emitting matches.
    #: Multi-core: all receive threads probe in parallel (Section 4.4).
    hash_probe_tuples_per_s: float = 60.0e6
    #: Post-join tuple processing (residual predicate + partial
    #: aggregation) — a tight vectorised loop across all cores.
    jen_agg_tuples_per_s: float = 150.0e6

    # --- Database side ----------------------------------------------------
    #: Table-scan throughput per DB worker over its local partition.
    db_scan_bytes_per_s: float = 220.0 * MB
    #: Index-only access rate (rows/s per worker); used for Bloom-filter
    #: builds and for the second, BF-filtered access in the zigzag join.
    db_index_tuples_per_s: float = 12.0e6
    #: Index + RID base-table fetch rate (rows/s per worker): the plan the
    #: database optimizer picks for highly selective local predicates.
    db_rid_fetch_tuples_per_s: float = 0.1e6
    #: Rate at which one DB worker can push rows out through the UDF-based
    #: socket path.  This is the paper's deliberately constrained EDW export
    #: (the DPF cluster is "purposely allocated less resources ... to mimic
    #: the case that the database is more heavily utilized", Section 5).
    db_export_tuples_per_s: float = 0.032e6
    #: Marginal cost of each *additional* copy of an exported row (the
    #: broadcast join writes one serialized buffer to many sockets, so
    #: extra copies are cheaper than first serializations).
    export_copy_factor: float = 0.5
    #: Rate at which one DB worker ingests rows arriving from JEN.  Remote
    #: ingest through UDFs is the bottleneck of the DB-side join.
    db_ingest_tuples_per_s: float = 0.15e6
    #: In-database join + aggregation throughput per worker (rows of the
    #: build+probe inputs plus output pairs processed per second).
    db_join_tuples_per_s: float = 12.0e6
    #: In-database reshuffle goodput per worker (10 Gbit NICs shared by six
    #: workers per server, minus serialization overhead).
    db_shuffle_bytes_per_s: float = 80.0 * MB

    #: Disk write/read bandwidth per JEN worker available to spilled
    #: join fragments (Grace-hash spilling, the paper's future work).
    jen_spill_bytes_per_s: float = 200.0 * MB

    # --- Bloom filters ----------------------------------------------------
    #: Insert rate into a Bloom filter, per worker (both sides).
    bf_build_tuples_per_s: float = 25.0e6
    #: Probe rate against a Bloom filter, per worker.
    bf_probe_tuples_per_s: float = 40.0e6

    # --- Fixed latencies ---------------------------------------------------
    #: Query startup: UDF invocation, coordinator handshakes, connection
    #: establishment between DB2 workers and JEN workers (paper Fig. 5).
    startup_seconds: float = 2.0
    #: Returning the small final aggregate to the database side.
    result_return_seconds: float = 0.5


@dataclass(frozen=True)
class PaperScale:
    """Logical dataset sizes at full paper scale (Section 5, "Dataset")."""

    #: Rows in the database transaction table T.
    t_rows: int = 1_600_000_000
    #: Rows in the HDFS log table L.
    l_rows: int = 15_000_000_000
    #: Unique join keys shared by the two tables.
    unique_join_keys: int = 16_000_000
    #: Bytes per T row in database storage (97 GB / 1.6 B rows).
    t_row_bytes: float = 65.0
    #: Bytes per L row in text format (about 1 TB / 15 B rows).
    l_text_row_bytes: float = 71.0
    #: Bytes per L row in Parquet with Snappy (421 GB / 15 B rows).
    l_parquet_row_bytes: float = 30.0


@dataclass(frozen=True)
class HybridConfig:
    """Top-level configuration bundle used across the library.

    ``scale`` is the fraction of paper-scale data the in-process data plane
    actually materialises.  The time plane divides measured volumes by
    ``scale`` before replaying them, so simulated times always refer to the
    full paper-scale experiment regardless of how much data a test or
    benchmark chooses to generate.
    """

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    cost: CostModel = field(default_factory=CostModel)
    bloom: BloomFilterConfig = field(default_factory=BloomFilterConfig)
    paper: PaperScale = field(default_factory=PaperScale)
    #: Data-plane scale factor: 1.0 means full paper scale (do not do this
    #: in-process); the default materialises one ten-thousandth.
    scale: float = 1.0 / 10_000.0
    #: Hottest-shuffle-receiver load relative to the mean, at paper
    #: scale (1.0 = the paper's uniform keys).  Set from
    #: :func:`repro.workload.generator.zipf_skew_factor` when running the
    #: skewed-key extension; the time plane gates shuffles and hash
    #: builds on the hottest worker.
    shuffle_skew: float = 1.0
    #: Per-worker in-memory build-side limit for JEN's local hash join,
    #: in *paper-scale* rows.  Zero (the default) means unlimited — the
    #: paper's current JEN; a positive budget enables the Grace-hash
    #: spilling of :mod:`repro.jen.spill`.
    jen_memory_budget_rows: float = 0.0

    def scaled(self, scale: float) -> "HybridConfig":
        """Return a copy of this configuration with a new data-plane scale."""
        return replace(self, scale=scale)

    def t_rows(self) -> int:
        """Rows of T to materialise at the configured scale."""
        return max(1, int(self.paper.t_rows * self.scale))

    def l_rows(self) -> int:
        """Rows of L to materialise at the configured scale."""
        return max(1, int(self.paper.l_rows * self.scale))

    def join_keys(self) -> int:
        """Unique join keys at the configured scale."""
        return max(1, int(self.paper.unique_join_keys * self.scale))

    def bloom_bits(self) -> int:
        """Bloom filter bits scaled with the key universe.

        At paper scale this is the 128 M bits / 2 hashes configuration of
        Section 5; at reduced data-plane scale the filter shrinks with the
        key universe so the false-positive rate is preserved.
        """
        bits = int(self.bloom.num_bits * self.scale)
        return max(1024, bits)


def default_config(scale: float = 1.0 / 10_000.0) -> HybridConfig:
    """Build the paper's default configuration at the given data scale."""
    return HybridConfig(scale=scale)
