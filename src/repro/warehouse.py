"""The hybrid warehouse: one EDW plus one HDFS/JEN cluster.

:class:`HybridWarehouse` is the top-level object users construct: it
wires the parallel database, the simulated HDFS file system, the JEN
engine, the network topology and the UDF registry together, and is what
the join algorithms and the advisor operate on.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import HybridConfig, default_config
from repro.edw.database import ParallelDatabase
from repro.edw.udf import UdfRegistry, default_udf_registry
from repro.hdfs.filesystem import HdfsFileSystem
from repro.jen.engine import Jen
from repro.net.topology import HybridTopology, default_topology
from repro.relational.table import Table


class HybridWarehouse:
    """An EDW and an HDFS cluster federated at the engine level."""

    def __init__(self, config: Optional[HybridConfig] = None,
                 jen_locality: bool = True):
        self.config = config or default_config()
        self.database = ParallelDatabase(self.config.cluster)
        self.hdfs = HdfsFileSystem(self.config.cluster)
        self.jen = Jen(self.hdfs, self.config, locality=jen_locality)
        self.topology: HybridTopology = default_topology(self.config.cluster)
        self.udfs: UdfRegistry = default_udf_registry()
        self.udfs.register("read_hdfs", self._read_hdfs)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load_db_table(self, name: str, table: Table,
                      distribute_on: str) -> None:
        """Load a table into the parallel database."""
        self.database.create_table(name, table, distribute_on)

    def load_hdfs_table(self, name: str, table: Table,
                        format_name: str = "parquet",
                        path: Optional[str] = None) -> None:
        """Write a table into HDFS and register it with HCatalog.

        The block count is kept representative of paper scale (the table
        at full size split into 128 MB blocks), capped at eight blocks
        per DataNode so the reduced data plane stays fast — enough for
        the locality-aware scheduler and failure re-planning to behave
        as they would on the real cluster.
        """
        from repro.hdfs.formats import format_by_name

        storage_format = format_by_name(format_name)
        paper_bytes = (
            storage_format.row_stored_bytes(table.schema)
            * table.num_rows / self.config.scale
        )
        paper_blocks = max(
            1, int(paper_bytes / self.config.cluster.hdfs_block_size)
        )
        target_blocks = min(
            paper_blocks, 8 * self.config.cluster.hdfs_nodes,
            table.num_rows,
        )
        self.hdfs.write_table(
            name, path or f"/warehouse/{name}", table, format_name,
            target_blocks=target_blocks,
        )

    # ------------------------------------------------------------------
    # Fault injection (chaos runs)
    # ------------------------------------------------------------------
    def arm_faults(self, plan, seed: int = 11, **kwargs):
        """Arm a :class:`~repro.faults.FaultPlan` (or spec string) on the
        JEN engine; see :meth:`repro.jen.engine.Jen.arm_faults`."""
        return self.jen.arm_faults(plan, seed=seed, **kwargs)

    def disarm_faults(self) -> None:
        """Drop the armed fault plan and restore full worker strength."""
        self.jen.disarm_faults()
        self.jen.restore_workers()

    # ------------------------------------------------------------------
    # Convenience accessors (tests, reference runs)
    # ------------------------------------------------------------------
    def gather_db_table(self, name: str) -> Table:
        """All rows of a database table in one in-memory table."""
        return self.database.gather_table(name)

    def gather_hdfs_table(self, name: str) -> Table:
        """All rows of an HDFS table in one in-memory table."""
        blocks = self.hdfs.table_blocks(name)
        pieces: List[Table] = [self.hdfs.read_block(block) for block in blocks]
        return Table.concat(pieces)

    # ------------------------------------------------------------------
    # The read_hdfs table UDF (paper Section 4.1.1)
    # ------------------------------------------------------------------
    def _read_hdfs(self, table_name: str, predicate_sql: str = "",
                   columns=None, bloom=None, key_column: str = None
                   ) -> Table:
        """The paper's ``read_hdfs`` table UDF.

        Pushes the table name, a SQL predicate fragment, the projected
        columns, an optional database Bloom filter and its join-key
        column down to the JEN workers, which scan, filter and return
        the surviving rows — the exact contract of the UDF that drives
        the DB-side join in the paper's example statement.

        Registered on ``warehouse.udfs`` as ``"read_hdfs"``.
        """
        from repro.jen.worker import ScanRequest
        from repro.sql.predicates import predicate_from_sql

        meta = self.hdfs.table_meta(table_name)
        predicate = predicate_from_sql(predicate_sql, meta.schema,
                                       self.udfs)
        if columns is None:
            names = tuple(meta.schema.names)
        elif isinstance(columns, str):
            names = tuple(
                name.strip() for name in columns.split(",") if name.strip()
            )
        else:
            names = tuple(columns)
        request = ScanRequest(
            predicate=predicate,
            projection=names,
            derived=(),
            wire_columns=names,
            join_key=key_column,
        )
        scan = self.jen.scan_with_request(table_name, request,
                                          db_bloom=bloom)
        return Table.concat(scan.wire_tables)
