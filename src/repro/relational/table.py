"""Columnar in-memory tables backed by numpy arrays.

A :class:`Table` owns one numpy array per column plus, for
dictionary-encoded string columns, a shared dictionary array of distinct
strings.  All engines in the reproduction (database workers, JEN workers,
the reference executor) move these tables around, filter them, join them
and aggregate them, so the operations here are deliberately vectorised.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TableError
from repro.relational.schema import Column, DataType, Schema


class Table:
    """An immutable-by-convention columnar table.

    Parameters
    ----------
    schema:
        Column definitions; order defines row layout for serialization.
    columns:
        Mapping of column name to a numpy array of the backing dtype.
        All arrays must share one length.
    dictionaries:
        For each ``DICT_STRING`` column, the array of distinct string
        values its int32 codes index into.
    """

    def __init__(
        self,
        schema: Schema,
        columns: Mapping[str, np.ndarray],
        dictionaries: Optional[Mapping[str, np.ndarray]] = None,
    ):
        self.schema = schema
        self._columns: Dict[str, np.ndarray] = {}
        self._dictionaries: Dict[str, np.ndarray] = dict(dictionaries or {})

        lengths = set()
        for column in schema:
            if column.name not in columns:
                raise TableError(f"missing data for column {column.name!r}")
            array = np.asarray(columns[column.name])
            expected = column.dtype.numpy_dtype()
            if array.dtype != expected:
                array = array.astype(expected)
            self._columns[column.name] = array
            lengths.add(len(array))
            if column.dtype is DataType.DICT_STRING:
                if column.name not in self._dictionaries:
                    raise TableError(
                        f"dict-string column {column.name!r} has no dictionary"
                    )
        extra = set(columns) - set(schema.names)
        if extra:
            raise TableError(f"data provided for unknown columns: {sorted(extra)}")
        if len(lengths) > 1:
            raise TableError(f"ragged columns: lengths {sorted(lengths)}")
        self._num_rows = lengths.pop() if lengths else 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def _view(
        cls,
        schema: Schema,
        columns: Dict[str, np.ndarray],
        dictionaries: Dict[str, np.ndarray],
    ) -> "Table":
        """Internal constructor for tables derived from a validated table.

        ``take``/``slice``/``project``/``rename`` produce arrays whose
        dtypes and lengths are consistent by construction, so re-running
        the per-column checks of ``__init__`` is pure overhead — and at
        thousands of slices per shuffle it dominated wall-clock
        profiles.  External construction must go through ``__init__``.
        """
        table = cls.__new__(cls)
        table.schema = schema
        table._columns = columns
        table._dictionaries = dictionaries
        first = next(iter(columns.values()), None)
        table._num_rows = len(first) if first is not None else 0
        return table

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """A zero-row table with the given schema."""
        columns = {
            column.name: np.empty(0, dtype=column.dtype.numpy_dtype())
            for column in schema
        }
        dictionaries = {
            column.name: np.empty(0, dtype=object)
            for column in schema
            if column.dtype is DataType.DICT_STRING
        }
        return cls(schema, columns, dictionaries)

    @classmethod
    def concat(cls, tables: Sequence["Table"]) -> "Table":
        """Vertically concatenate tables sharing a schema.

        Dictionary-encoded columns must share their dictionary object
        (which they do whenever the parts were split from one table, the
        only case the engines need); otherwise codes would be remapped,
        which this substrate deliberately does not attempt.

        Fast paths keep shuffles cheap: a single input comes back
        unchanged, and when every row lives in one part (the common
        skewed-shuffle case) that part is returned as-is instead of
        being copied.
        """
        if not tables:
            raise TableError("cannot concatenate zero tables")
        if len(tables) == 1:
            return tables[0]
        schema = tables[0].schema
        for table in tables[1:]:
            if table.schema.names != schema.names:
                raise TableError(
                    f"schema mismatch in concat: {table.schema.names} "
                    f"vs {schema.names}"
                )
        non_empty = [table for table in tables if table.num_rows]
        if len(non_empty) == 1:
            return non_empty[0]
        if non_empty and len(non_empty) < len(tables):
            # Empty parts contribute no rows and, being splits of the
            # same source, no dictionary conflicts: drop them before
            # paying for their (empty) array concatenations.
            tables = non_empty
        columns = {
            name: np.concatenate([t.column(name) for t in tables])
            for name in schema.names
        }
        dictionaries: Dict[str, np.ndarray] = {}
        for column in schema:
            if column.dtype is not DataType.DICT_STRING:
                continue
            dicts = [t.dictionary(column.name) for t in tables if t.num_rows]
            if not dicts:
                dicts = [tables[0].dictionary(column.name)]
            first = dicts[0]
            for other in dicts[1:]:
                if other is not first and not np.array_equal(other, first):
                    raise TableError(
                        f"cannot concat {column.name!r}: differing dictionaries"
                    )
            dictionaries[column.name] = first
        return cls(schema, columns, dictionaries)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return self._num_rows

    def __len__(self) -> int:
        return self._num_rows

    def __repr__(self) -> str:
        return f"Table({self.schema!r}, rows={self._num_rows})"

    def column(self, name: str) -> np.ndarray:
        """The backing array for ``name`` (codes for dict-string columns)."""
        try:
            return self._columns[name]
        except KeyError:
            self.schema.column(name)  # raises the descriptive SchemaError
            raise

    def dictionary(self, name: str) -> np.ndarray:
        """The dictionary array for a dict-string column."""
        column = self.schema.column(name)
        if column.dtype is not DataType.DICT_STRING:
            raise TableError(f"column {name!r} is not dictionary-encoded")
        return self._dictionaries[name]

    def strings(self, name: str) -> np.ndarray:
        """Materialize a dict-string column as actual strings."""
        return self.dictionary(name)[self.column(name)]

    def row_bytes(self, names: Optional[Sequence[str]] = None) -> int:
        """Logical bytes of one (optionally projected) row.

        Dictionary-encoded strings count at their declared varchar
        width here — the classic row-shipping wire serialises decoded
        strings, and the paper's movement accounting assumes it.  Use
        :meth:`wire_row_bytes` for the dictionary-aware width of the
        compact wire codec.
        """
        return self.schema.row_width(names)

    def total_bytes(self, names: Optional[Sequence[str]] = None) -> int:
        """Logical bytes of the whole (optionally projected) table."""
        return self.row_bytes(names) * self._num_rows

    def wire_row_bytes(self,
                       names: Optional[Sequence[str]] = None) -> float:
        """Dictionary-aware bytes of one row on the compact wire.

        A ``DICT_STRING`` column ships its int32 id array plus the
        dictionary once per transfer, so its per-row price is 4 bytes
        plus the dictionary's total string bytes amortised over the
        table's rows — never the decoded varchar width.  Fixed-width
        columns price at their declared width, as in
        :meth:`row_bytes`.
        """
        selected = self.schema.names if names is None else names
        total = 0.0
        for name in selected:
            column = self.schema.column(name)
            if column.dtype is not DataType.DICT_STRING:
                total += column.width()
                continue
            total += DataType.DICT_STRING.numpy_dtype().itemsize
            dictionary = self._dictionaries.get(name)
            if dictionary is not None and self._num_rows > 0:
                dictionary_bytes = sum(
                    len(str(value)) for value in dictionary)
                total += dictionary_bytes / self._num_rows
        return total

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def filter(self, mask: np.ndarray) -> "Table":
        """Rows where ``mask`` is true.

        ``mask`` must be boolean: an integer array would silently be
        treated as nonzero-ness (not as row indices), which is never
        what a caller holding indices wants — use :meth:`take` for
        index gathers.
        """
        mask = np.asarray(mask)
        if mask.dtype != np.bool_:
            raise TableError(
                f"filter mask must be boolean, got dtype {mask.dtype}; "
                "use take() for integer row indices"
            )
        if len(mask) != self._num_rows:
            raise TableError(
                f"mask length {len(mask)} != table rows {self._num_rows}"
            )
        return self.take(np.flatnonzero(mask))

    def take(self, indices: np.ndarray) -> "Table":
        """Rows at ``indices`` (gather), preserving dictionaries."""
        columns = {
            name: np.take(arr, indices) for name, arr in self._columns.items()
        }
        return Table._view(self.schema, columns, self._dictionaries)

    def project(self, names: Sequence[str]) -> "Table":
        """Keep only ``names``, in the requested order."""
        schema = self.schema.project(names)
        columns = {name: self._columns[name] for name in schema.names}
        dictionaries = {
            name: self._dictionaries[name]
            for name in schema.names
            if name in self._dictionaries
        }
        return Table._view(schema, columns, dictionaries)

    def rename(self, mapping: Dict[str, str]) -> "Table":
        """Rename columns via ``mapping``."""
        schema = self.schema.rename(mapping)
        columns = {
            mapping.get(name, name): arr for name, arr in self._columns.items()
        }
        dictionaries = {
            mapping.get(name, name): d for name, d in self._dictionaries.items()
        }
        return Table._view(schema, columns, dictionaries)

    def with_column(self, column: Column, values: np.ndarray,
                    dictionary: Optional[np.ndarray] = None) -> "Table":
        """A new table with one extra column appended."""
        schema = self.schema.concat(Schema([column]))
        columns = dict(self._columns)
        columns[column.name] = values
        dictionaries = dict(self._dictionaries)
        if dictionary is not None:
            dictionaries[column.name] = dictionary
        return Table(schema, columns, dictionaries)

    def slice(self, start: int, stop: int) -> "Table":
        """Rows in ``[start, stop)`` as a zero-copy view."""
        columns = {
            name: arr[start:stop] for name, arr in self._columns.items()
        }
        return Table._view(self.schema, columns, self._dictionaries)

    def split(self, parts: int) -> List["Table"]:
        """Split into ``parts`` contiguous, roughly equal row ranges."""
        if parts <= 0:
            raise TableError("parts must be positive")
        boundaries = np.linspace(0, self._num_rows, parts + 1).astype(np.int64)
        return [
            self.slice(int(boundaries[i]), int(boundaries[i + 1]))
            for i in range(parts)
        ]

    def to_rows(self) -> List[Tuple]:
        """Materialize as Python row tuples (tests and tiny results only)."""
        materialized = []
        for column in self.schema:
            if column.dtype is DataType.DICT_STRING:
                materialized.append(self.strings(column.name))
            else:
                materialized.append(self._columns[column.name])
        return list(zip(*[arr.tolist() for arr in materialized])) \
            if materialized else []

    def sorted_by(self, names: Sequence[str]) -> "Table":
        """Rows ordered lexicographically by ``names`` (stable)."""
        if not names:
            return self
        keys = [self._columns[name] for name in reversed(list(names))]
        order = np.lexsort(keys)
        return self.take(order)


def table_from_rows(schema: Schema, rows: Iterable[Tuple],
                    dictionaries: Optional[Mapping[str, np.ndarray]] = None
                    ) -> Table:
    """Build a table from Python row tuples (test convenience).

    Dict-string columns accept raw strings; a dictionary is derived unless
    one is supplied.
    """
    rows = list(rows)
    columns: Dict[str, np.ndarray] = {}
    dicts: Dict[str, np.ndarray] = dict(dictionaries or {})
    for position, column in enumerate(schema):
        values = [row[position] for row in rows]
        if column.dtype is DataType.DICT_STRING:
            if column.name in dicts:
                dictionary = dicts[column.name]
                lookup = {value: code for code, value in enumerate(dictionary)}
                codes = np.array([lookup[v] for v in values], dtype=np.int32)
            else:
                dictionary, codes = np.unique(
                    np.asarray(values, dtype=object), return_inverse=True
                )
                codes = codes.astype(np.int32)
                dicts[column.name] = dictionary
            columns[column.name] = codes
        else:
            columns[column.name] = np.asarray(
                values, dtype=column.dtype.numpy_dtype()
            )
    return Table(schema, columns, dicts)
