"""Single-node columnar relational kernel.

This subpackage is the substrate every engine in the reproduction builds
on: the parallel database workers (:mod:`repro.edw`), the JEN workers
(:mod:`repro.jen`) and the reference single-node executor used by the
tests all operate on the same :class:`~repro.relational.table.Table`
representation and share the predicate and operator implementations here.
"""

from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table
from repro.relational.expressions import (
    BetweenDayDiff,
    ColumnPredicate,
    CompareOp,
    Conjunction,
    Disjunction,
    Negation,
    Predicate,
    TruePredicate,
    UdfPredicate,
    compare,
)
from repro.relational.operators import hash_join_indices, join_tables
from repro.relational.aggregates import AggregateSpec, group_by_aggregate

__all__ = [
    "AggregateSpec",
    "BetweenDayDiff",
    "Column",
    "ColumnPredicate",
    "CompareOp",
    "Conjunction",
    "DataType",
    "Disjunction",
    "Negation",
    "Predicate",
    "Schema",
    "Table",
    "TruePredicate",
    "UdfPredicate",
    "compare",
    "group_by_aggregate",
    "hash_join_indices",
    "join_tables",
]
