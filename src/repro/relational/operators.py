"""Vectorised relational operators: equi-join index computation and
table-level join materialisation.

The join here is the *local* building block: every distributed algorithm
in the paper ultimately ends with each worker running an in-memory hash
join on its slice of the data.  The numpy implementation below is
sort-based rather than literally hash-based, which is semantically
identical for equi-joins and much faster in pure Python; the time plane
prices it with hash-join build/probe rates, matching the engines the
paper describes.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TableError
from repro.kernels.joinindex import JoinBuildIndex, probe_join
from repro.relational.table import Table


def hash_join_indices(
    build_keys: np.ndarray, probe_keys: np.ndarray,
    build_index: Optional[JoinBuildIndex] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """All matching (build_row, probe_row) index pairs for an equi-join.

    Returns two int64 arrays of equal length: positions into the build
    side and the probe side.  Every pair of rows with equal keys appears
    exactly once, so duplicate keys multiply out as SQL requires.

    ``build_index`` is an optional pre-sorted
    :class:`~repro.kernels.JoinBuildIndex` over ``build_keys``; passing
    one skips the build-side sort (the kernel verifies it covers these
    keys before trusting it).
    """
    return probe_join(build_keys, probe_keys, build_index=build_index)


def join_tables(
    build: Table,
    probe: Table,
    build_key: str,
    probe_key: str,
    build_prefix: str = "",
    probe_prefix: str = "",
    build_index: Optional[JoinBuildIndex] = None,
) -> Table:
    """Materialise the inner equi-join of two tables.

    Column name collisions are resolved with the given prefixes; it is an
    error if any collision remains after prefixing.  The join key appears
    once per side (possibly prefixed), exactly as the paper's SQL
    produces.  ``build_index`` optionally reuses a pre-sorted build side
    (see :func:`hash_join_indices`).
    """
    build_idx, probe_idx = hash_join_indices(
        build.column(build_key), probe.column(probe_key),
        build_index=build_index,
    )
    build_rows = build.take(build_idx)
    probe_rows = probe.take(probe_idx)

    build_renames = _prefix_mapping(build.schema.names, build_prefix)
    probe_renames = _prefix_mapping(probe.schema.names, probe_prefix)
    build_rows = build_rows.rename(build_renames)
    probe_rows = probe_rows.rename(probe_renames)

    collisions = set(build_rows.schema.names) & set(probe_rows.schema.names)
    if collisions:
        raise TableError(
            f"join output column collision: {sorted(collisions)}; "
            "supply build_prefix/probe_prefix"
        )

    schema = build_rows.schema.concat(probe_rows.schema)
    columns: Dict[str, np.ndarray] = {}
    dictionaries: Dict[str, np.ndarray] = {}
    from repro.relational.schema import DataType

    for side in (build_rows, probe_rows):
        for column in side.schema:
            columns[column.name] = side.column(column.name)
            if column.dtype is DataType.DICT_STRING:
                dictionaries[column.name] = side.dictionary(column.name)
    return Table(schema, columns, dictionaries)


def semi_join_mask(keys: np.ndarray, membership_keys: np.ndarray) -> np.ndarray:
    """Boolean mask of ``keys`` that appear in ``membership_keys``.

    This is the *exact* semi-join; Bloom-filter based pruning (with false
    positives) lives in :mod:`repro.core.bloom`.  The exact version is the
    reference the property tests compare against, and implements the
    classic semijoin baseline from the related-work discussion.
    """
    keys = np.asarray(keys)
    if keys.size == 0:
        return np.zeros(0, dtype=bool)
    members = np.unique(np.asarray(membership_keys))
    if members.size == 0:
        return np.zeros(len(keys), dtype=bool)
    positions = np.searchsorted(members, keys)
    positions = np.clip(positions, 0, len(members) - 1)
    return members[positions] == keys


def unique_keys(keys: np.ndarray) -> np.ndarray:
    """Sorted distinct join keys (the paper's ``JK(.)`` operator)."""
    return np.unique(np.asarray(keys))


def partition_by_hash(
    table: Table, key: str, num_partitions: int,
    hash_function: Optional[object] = None,
) -> Sequence[Table]:
    """Split ``table`` into ``num_partitions`` by hashing ``key``.

    ``hash_function`` maps an int array to partition numbers; the default
    is the library-wide agreed hash (see :mod:`repro.edw.partitioner`).
    Used by both the database side and JEN when they shuffle with the
    *agreed* hash function of the repartition and zigzag joins.

    Runs the single-pass partition kernel: one stable sort and one
    gather regardless of ``num_partitions``, bit-identical to filtering
    per destination.
    """
    from repro.edw.partitioner import agreed_hash_partition
    from repro.kernels.partition import partition_table

    if num_partitions <= 0:
        raise TableError("num_partitions must be positive")
    keys = table.column(key)
    if hash_function is None:
        assignments = agreed_hash_partition(keys, num_partitions)
    else:
        assignments = np.asarray(hash_function(keys, num_partitions))
    return partition_table(table, assignments, num_partitions)


def _prefix_mapping(names: Sequence[str], prefix: str) -> Dict[str, str]:
    if not prefix:
        return {}
    return {name: f"{prefix}{name}" for name in names}
