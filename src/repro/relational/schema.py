"""Schemas for the columnar tables used throughout the reproduction.

A :class:`Schema` is an ordered collection of typed :class:`Column`
definitions.  Column byte widths matter here more than in a typical
in-memory engine: the paper's join algorithms are dominated by *data
movement*, so every transfer in the time plane is priced from the widths
declared in the schema (e.g. the projected click-log record that gets
shuffled between JEN workers is `joinKey + predAfterJoin +
groupByExtractCol`, about 54 bytes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SchemaError


class DataType(enum.Enum):
    """Supported column data types.

    ``DICT_STRING`` is a dictionary-encoded string column: the data array
    holds int32 codes into a per-column dictionary of distinct strings.
    This mirrors how Parquet stores low-cardinality varchar columns and
    keeps the data plane fast, while the declared byte width still reflects
    the logical varchar size for movement accounting.
    """

    INT32 = "int32"
    INT64 = "int64"
    FLOAT64 = "float64"
    DATE = "date"  # stored as int32 day numbers
    DICT_STRING = "dict_string"

    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype backing this logical type's data array."""
        return _NUMPY_DTYPES[self]

    def default_width(self) -> int:
        """Default logical byte width used for movement accounting."""
        return _DEFAULT_WIDTHS[self]


# Built once: numpy_dtype() is called for every column of every table
# construction, so rebuilding these mappings per call showed up in the
# wall-clock profiles.
_NUMPY_DTYPES = {
    DataType.INT32: np.dtype(np.int32),
    DataType.INT64: np.dtype(np.int64),
    DataType.FLOAT64: np.dtype(np.float64),
    DataType.DATE: np.dtype(np.int32),
    DataType.DICT_STRING: np.dtype(np.int32),
}
_DEFAULT_WIDTHS = {
    DataType.INT32: 4,
    DataType.INT64: 8,
    DataType.FLOAT64: 8,
    DataType.DATE: 4,
    DataType.DICT_STRING: 16,
}


@dataclass(frozen=True)
class Column:
    """A named, typed column with a logical byte width.

    ``width_bytes`` is the average serialized width of one value; for
    fixed-width types it defaults to the storage width, for strings it
    should be set to the average varchar length (the paper's
    ``groupByExtractCol`` is ``varchar(46)``).
    """

    name: str
    dtype: DataType
    width_bytes: Optional[int] = None

    def width(self) -> int:
        """Logical width of one value in bytes."""
        if self.width_bytes is not None:
            return self.width_bytes
        return self.dtype.default_width()


class Schema:
    """An ordered, name-addressable collection of columns."""

    def __init__(self, columns: Iterable[Column]):
        self._columns: List[Column] = list(columns)
        self._by_name: Dict[str, Column] = {}
        for column in self._columns:
            if column.name in self._by_name:
                raise SchemaError(f"duplicate column name: {column.name!r}")
            self._by_name[column.name] = column
        # names/positions are asked for on every projection, shuffle and
        # serialization step; schemas are immutable, so compute once.
        self._names: Tuple[str, ...] = tuple(
            column.name for column in self._columns
        )
        self._positions: Dict[str, int] = {
            name: index for index, name in enumerate(self._names)
        }

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.dtype.value}" for c in self._columns)
        return f"Schema({cols})"

    @property
    def names(self) -> Tuple[str, ...]:
        """Column names in declaration order."""
        return self._names

    def column(self, name: str) -> Column:
        """Look up a column by name, raising :class:`SchemaError` if absent."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; have {list(self.names)}"
            ) from None

    def has_column(self, name: str) -> bool:
        """True if the schema contains ``name``."""
        return name in self._by_name

    def index_of(self, name: str) -> int:
        """Position of ``name`` in declaration order."""
        self.column(name)
        return self._positions[name]

    def project(self, names: Sequence[str]) -> "Schema":
        """A new schema with only ``names``, in the requested order."""
        return Schema([self.column(name) for name in names])

    def rename(self, mapping: Dict[str, str]) -> "Schema":
        """A new schema with columns renamed via ``mapping``."""
        renamed = []
        for column in self._columns:
            new_name = mapping.get(column.name, column.name)
            renamed.append(Column(new_name, column.dtype, column.width_bytes))
        return Schema(renamed)

    def concat(self, other: "Schema") -> "Schema":
        """Schema of this table's columns followed by ``other``'s."""
        return Schema(list(self._columns) + list(other))

    def row_width(self, names: Optional[Sequence[str]] = None) -> int:
        """Logical width in bytes of one row, optionally projected."""
        columns = self._columns if names is None else [
            self.column(name) for name in names
        ]
        return sum(column.width() for column in columns)
