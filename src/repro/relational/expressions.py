"""Predicate expressions evaluated against columnar tables.

The paper's query template (Section 2) needs exactly these shapes:

* local predicates on each table (``T.corPred <= a AND T.indPred <= b``);
* a post-join predicate on a pair of date columns
  (``days(T.tdate) - days(L.ldate) BETWEEN 0 AND 1``);
* UDF predicates (``region(L.ip) = 'East Coast'`` style).

Predicates are a small AST; :meth:`Predicate.evaluate` returns a boolean
mask over a table.  Selectivity bookkeeping lives in
:mod:`repro.query.stats`, not here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from repro.errors import ExpressionError
from repro.relational.table import Table


class CompareOp(enum.Enum):
    """Comparison operators supported by :class:`ColumnPredicate`."""

    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def apply(self, values: np.ndarray, literal) -> np.ndarray:
        """Evaluate ``values <op> literal`` element-wise."""
        operations = {
            CompareOp.EQ: np.equal,
            CompareOp.NE: np.not_equal,
            CompareOp.LT: np.less,
            CompareOp.LE: np.less_equal,
            CompareOp.GT: np.greater,
            CompareOp.GE: np.greater_equal,
        }
        return operations[self](values, literal)


class Predicate:
    """Base class for boolean expressions over one table."""

    def evaluate(self, table: Table) -> np.ndarray:
        """Boolean mask of rows satisfying the predicate."""
        raise NotImplementedError

    def columns(self) -> Tuple[str, ...]:
        """Names of the columns the predicate reads."""
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return Conjunction((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Disjunction((self, other))

    def __invert__(self) -> "Predicate":
        return Negation(self)


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Always true; the identity element for conjunction."""

    def evaluate(self, table: Table) -> np.ndarray:
        return np.ones(table.num_rows, dtype=bool)

    def columns(self) -> Tuple[str, ...]:
        return ()


@dataclass(frozen=True)
class ColumnPredicate(Predicate):
    """``column <op> literal`` over a single column."""

    column: str
    op: CompareOp
    literal: object

    def evaluate(self, table: Table) -> np.ndarray:
        return self.op.apply(table.column(self.column), self.literal)

    def columns(self) -> Tuple[str, ...]:
        return (self.column,)


@dataclass(frozen=True)
class Conjunction(Predicate):
    """Logical AND of child predicates."""

    children: Tuple[Predicate, ...]

    def evaluate(self, table: Table) -> np.ndarray:
        if not self.children:
            return np.ones(table.num_rows, dtype=bool)
        mask = self.children[0].evaluate(table)
        for child in self.children[1:]:
            mask &= child.evaluate(table)
        return mask

    def columns(self) -> Tuple[str, ...]:
        names: Tuple[str, ...] = ()
        for child in self.children:
            names += child.columns()
        return tuple(dict.fromkeys(names))


@dataclass(frozen=True)
class Disjunction(Predicate):
    """Logical OR of child predicates."""

    children: Tuple[Predicate, ...]

    def evaluate(self, table: Table) -> np.ndarray:
        if not self.children:
            return np.zeros(table.num_rows, dtype=bool)
        mask = self.children[0].evaluate(table)
        for child in self.children[1:]:
            mask |= child.evaluate(table)
        return mask

    def columns(self) -> Tuple[str, ...]:
        names: Tuple[str, ...] = ()
        for child in self.children:
            names += child.columns()
        return tuple(dict.fromkeys(names))


@dataclass(frozen=True)
class Negation(Predicate):
    """Logical NOT of a child predicate."""

    child: Predicate

    def evaluate(self, table: Table) -> np.ndarray:
        return ~self.child.evaluate(table)

    def columns(self) -> Tuple[str, ...]:
        return self.child.columns()


@dataclass(frozen=True)
class BetweenDayDiff(Predicate):
    """``low <= days(left) - days(right) <= high``.

    This is the paper's post-join predicate: a transaction counts only if
    it happened within one day of the click
    (``days(T.tdate) - days(L.ldate) BETWEEN 0 AND 1``).  Both columns
    must be present in the (joined) table this evaluates against.
    """

    left_column: str
    right_column: str
    low: int = 0
    high: int = 1

    def evaluate(self, table: Table) -> np.ndarray:
        difference = (
            table.column(self.left_column).astype(np.int64)
            - table.column(self.right_column).astype(np.int64)
        )
        return (difference >= self.low) & (difference <= self.high)

    def columns(self) -> Tuple[str, ...]:
        return (self.left_column, self.right_column)


@dataclass(frozen=True)
class InSetPredicate(Predicate):
    """``column IN (v1, v2, ...)`` membership over a literal set."""

    column: str
    values: Tuple

    def evaluate(self, table: Table) -> np.ndarray:
        return np.isin(table.column(self.column), np.asarray(self.values))

    def columns(self) -> Tuple[str, ...]:
        return (self.column,)


@dataclass(frozen=True)
class ColumnPairPredicate(Predicate):
    """``left_column <op> right_column`` — two columns of one table.

    On a joined (prefixed) table this expresses post-join comparisons
    between the two sides, e.g. ``T.price >= L.minPrice``.
    """

    left_column: str
    op: CompareOp
    right_column: str

    def evaluate(self, table: Table) -> np.ndarray:
        return self.op.apply(
            table.column(self.left_column), table.column(self.right_column)
        )

    def columns(self) -> Tuple[str, ...]:
        return (self.left_column, self.right_column)


@dataclass(frozen=True)
class UdfPredicate(Predicate):
    """A named scalar UDF applied to one column, compared for truth.

    Mirrors the paper's ``region(L.ip) = 'East Coast'``: ``function``
    receives the raw column array and returns a boolean mask.  The name is
    carried so plans and traces can display it.
    """

    name: str
    column: str
    function: Callable[[np.ndarray], np.ndarray]

    def evaluate(self, table: Table) -> np.ndarray:
        mask = np.asarray(self.function(table.column(self.column)))
        if mask.dtype != bool or len(mask) != table.num_rows:
            raise ExpressionError(
                f"UDF predicate {self.name!r} must return a boolean mask "
                f"of length {table.num_rows}"
            )
        return mask

    def columns(self) -> Tuple[str, ...]:
        return (self.column,)


def compare(column: str, op: str, literal) -> ColumnPredicate:
    """Convenience constructor: ``compare('corPred', '<=', 17)``."""
    try:
        operator = CompareOp(op)
    except ValueError:
        valid = ", ".join(member.value for member in CompareOp)
        raise ExpressionError(
            f"unknown comparison operator {op!r}; expected one of {valid}"
        ) from None
    return ColumnPredicate(column, operator, literal)


def conjunction_of(predicates: Sequence[Predicate]) -> Predicate:
    """AND together a sequence of predicates (TruePredicate if empty)."""
    predicates = [p for p in predicates if not isinstance(p, TruePredicate)]
    if not predicates:
        return TruePredicate()
    if len(predicates) == 1:
        return predicates[0]
    return Conjunction(tuple(predicates))
