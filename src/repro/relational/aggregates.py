"""Hash-based group-by aggregation.

The paper's query template always ends with ``GROUP BY ... COUNT(*)``;
JEN computes *partial* aggregates per worker during the join probe and a
single designated worker merges them (Section 3 / 4.4).  The functions
here support both steps: :func:`group_by_aggregate` for the local pass
and :func:`merge_partial_aggregates` for the final combine, with the
usual re-aggregation rules (COUNT merges by SUM, AVG merges via SUM and
COUNT, and so on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExpressionError, TableError
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table

#: Aggregate function names supported by :class:`AggregateSpec`.
SUPPORTED_FUNCTIONS = ("count", "sum", "min", "max", "avg")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate in a group-by: ``function(column) AS alias``.

    ``column`` is ignored for ``count`` (COUNT(*) semantics).
    """

    function: str
    column: Optional[str] = None
    alias: Optional[str] = None

    def __post_init__(self):
        if self.function not in SUPPORTED_FUNCTIONS:
            raise ExpressionError(
                f"unsupported aggregate {self.function!r}; "
                f"expected one of {SUPPORTED_FUNCTIONS}"
            )
        if self.function != "count" and self.column is None:
            raise ExpressionError(
                f"aggregate {self.function!r} requires a column"
            )

    def output_name(self) -> str:
        """Column name of this aggregate in the result table."""
        if self.alias:
            return self.alias
        if self.function == "count":
            return "count"
        return f"{self.function}_{self.column}"

    def output_dtype(self) -> DataType:
        """Result type: counts/sums are int64, averages float64."""
        if self.function in ("count", "sum"):
            return DataType.INT64
        if self.function == "avg":
            return DataType.FLOAT64
        return DataType.INT64


def group_by_aggregate(
    table: Table, group_columns: Sequence[str], aggregates: Sequence[AggregateSpec]
) -> Table:
    """Group ``table`` by ``group_columns`` and compute ``aggregates``.

    Result rows are ordered by ascending group key (deterministic, which
    keeps distributed merges and the reference executor comparable).
    """
    group_columns = list(group_columns)
    if not group_columns:
        raise TableError("group_by_aggregate requires at least one group column")
    for spec in aggregates:
        if spec.column is not None:
            table.schema.column(spec.column)

    if table.num_rows == 0:
        group_ids = np.empty(0, dtype=np.int64)
        representative_idx = np.empty(0, dtype=np.int64)
    else:
        group_ids, representative_idx = _group_ids(table, group_columns)
    num_groups = len(representative_idx)

    out_columns: Dict[str, np.ndarray] = {}
    dictionaries: Dict[str, np.ndarray] = {}
    schema_columns: List[Column] = []
    for name in group_columns:
        column = table.schema.column(name)
        schema_columns.append(column)
        out_columns[name] = table.column(name)[representative_idx]
        if column.dtype is DataType.DICT_STRING:
            dictionaries[name] = table.dictionary(name)

    for spec in aggregates:
        values = _compute_aggregate(table, spec, group_ids, num_groups)
        out_name = spec.output_name()
        if out_name in out_columns:
            raise TableError(f"duplicate aggregate output name {out_name!r}")
        schema_columns.append(Column(out_name, spec.output_dtype()))
        out_columns[out_name] = values

    return Table(Schema(schema_columns), out_columns, dictionaries)


def merge_partial_aggregates(
    partials: Sequence[Table],
    group_columns: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Table:
    """Combine per-worker partial aggregates into the final result.

    Applies the standard merge rules: partial COUNT columns are summed,
    partial SUM summed, MIN/MAX re-minimised/maximised.  AVG must have
    been decomposed by the caller (the query layer plans AVG as SUM+COUNT
    and divides at the very end), so it is rejected here.
    """
    for spec in aggregates:
        if spec.function == "avg":
            raise ExpressionError(
                "avg cannot be merged directly; decompose into sum and count"
            )
    non_empty = [t for t in partials if t.num_rows] or list(partials[:1])
    combined = Table.concat(non_empty)
    merge_specs = [
        AggregateSpec(
            _merge_function(spec.function),
            column=spec.output_name(),
            alias=spec.output_name(),
        )
        for spec in aggregates
    ]
    return group_by_aggregate(combined, group_columns, merge_specs)


def _merge_function(function: str) -> str:
    """The re-aggregation function for merging partials of ``function``."""
    return {"count": "sum", "sum": "sum", "min": "min", "max": "max"}[function]


def _group_ids(
    table: Table, group_columns: Sequence[str]
) -> Tuple[np.ndarray, np.ndarray]:
    """Dense group ids per row plus one representative row per group."""
    if len(group_columns) == 1:
        keys = table.column(group_columns[0])
        _, representative_idx, group_ids = np.unique(
            keys, return_index=True, return_inverse=True
        )
        return group_ids.ravel(), representative_idx
    arrays = [table.column(name) for name in group_columns]
    stacked = np.rec.fromarrays(arrays)
    _, representative_idx, group_ids = np.unique(
        stacked, return_index=True, return_inverse=True
    )
    return group_ids.ravel(), representative_idx


def _compute_aggregate(
    table: Table, spec: AggregateSpec, group_ids: np.ndarray, num_groups: int
) -> np.ndarray:
    if num_groups == 0:
        dtype = spec.output_dtype().numpy_dtype()
        return np.empty(0, dtype=dtype)
    if spec.function == "count":
        return np.bincount(group_ids, minlength=num_groups).astype(np.int64)

    values = table.column(spec.column)
    if spec.function == "sum":
        return np.bincount(
            group_ids, weights=values.astype(np.float64), minlength=num_groups
        ).astype(np.int64)
    if spec.function == "avg":
        sums = np.bincount(
            group_ids, weights=values.astype(np.float64), minlength=num_groups
        )
        counts = np.bincount(group_ids, minlength=num_groups)
        return sums / np.maximum(counts, 1)
    # min/max: sort rows by group, reduce contiguous runs.
    order = np.argsort(group_ids, kind="stable")
    sorted_ids = group_ids[order]
    sorted_values = values[order]
    boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
    starts = np.concatenate(([0], boundaries))
    reducer = np.minimum if spec.function == "min" else np.maximum
    return reducer.reduceat(sorted_values, starts).astype(np.int64)
