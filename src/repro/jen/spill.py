"""Grace-hash spilling for JEN's local joins.

The paper's JEN "requires that all data fit in memory for the local
hash-based join on each worker.  In the future, we plan to support
spilling to disk to over come this limitation" (Section 4.4).  This
module implements that future work: when a worker's build side exceeds
its memory budget, both inputs are partitioned into fragments with a
*third* hash function (independent of both the agreed shuffle hash and
the database's internal hash, so fragments stay balanced), fragments are
"written" to disk, and the join runs fragment by fragment.

The data plane executes the fragmenting for real; the cost layer prices
one write plus one read of every spilled byte against the worker's disk
bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import JoinError
from repro.testkit import invariants

_FRAGMENT_MULT = np.uint64(0xD6E8FEB86659FD93)


def fragment_hash_partition(keys: np.ndarray, num_fragments: int
                            ) -> np.ndarray:
    """Fragment assignment, independent of the shuffle hashes."""
    if num_fragments <= 0:
        raise JoinError("num_fragments must be positive")
    x = np.asarray(keys).astype(np.uint64)
    with np.errstate(over="ignore"):
        x = x * _FRAGMENT_MULT
        x ^= x >> np.uint64(31)
        x = x * np.uint64(0x9E3779B97F4A7C15)
        x ^= x >> np.uint64(29)
    return (x % np.uint64(num_fragments)).astype(np.int64)


@dataclass
class SpillPlan:
    """How one worker's join will be fragmented."""

    num_fragments: int
    build_rows: int
    probe_rows: int

    @property
    def spilled(self) -> bool:
        """True if any fragmenting (and hence disk I/O) happens."""
        return self.num_fragments > 1

    def spilled_tuples(self) -> int:
        """Tuples written to and re-read from disk."""
        if not self.spilled:
            return 0
        return self.build_rows + self.probe_rows


def plan_spill(build_rows: int, probe_rows: int,
               memory_budget_rows: float) -> SpillPlan:
    """Decide the fragment count for one worker's join.

    ``memory_budget_rows`` is the largest build side that fits in the
    worker's memory; a non-positive budget means unlimited.
    """
    if memory_budget_rows <= 0 or build_rows <= memory_budget_rows:
        return SpillPlan(1, build_rows, probe_rows)
    fragments = int(np.ceil(build_rows / memory_budget_rows))
    return SpillPlan(fragments, build_rows, probe_rows)


def encoded_fragment_bytes(fragments: List[Tuple[object, object]]) -> int:
    """Disk bytes the fragments occupy in the compact wire codec.

    A late-materialization run spills fragments codec-encoded (the same
    varint/delta/dictionary-id framing the shuffle uses), so this is
    what actually hits the disk; returns 0 when late materialization is
    off — fragments then spill as raw rows and the classic
    ``row_bytes``-based pricing applies.
    """
    from repro.latemat import late_materialization_enabled

    if not late_materialization_enabled():
        return 0
    from repro.kernels.wirecodec import encoded_table_bytes

    total = 0
    for build, probe in fragments:
        if build.num_rows:
            total += encoded_table_bytes(build)
        if probe.num_rows:
            total += encoded_table_bytes(probe)
    return total


def fragment_tables(build, probe, build_key: str, probe_key: str,
                    num_fragments: int) -> List[Tuple[object, object]]:
    """Split both join inputs into co-aligned fragments.

    Rows with equal keys always land in the same fragment, so joining
    fragment-wise is exactly equivalent to the in-memory join.  Both
    sides go through the single-pass partition kernel — one sort + one
    gather each, with fragments as zero-copy views — so spill re-reads
    do not rescan either input once per fragment.
    """
    from repro.kernels.partition import partition_table

    if num_fragments <= 1:
        return [(build, probe)]
    build_assignment = fragment_hash_partition(
        build.column(build_key), num_fragments
    )
    probe_assignment = fragment_hash_partition(
        probe.column(probe_key), num_fragments
    )
    build_fragments = partition_table(build, build_assignment, num_fragments)
    probe_fragments = partition_table(probe, probe_assignment, num_fragments)
    fragments = list(zip(build_fragments, probe_fragments))
    if invariants.checking_enabled():
        invariants.check_spill_fragments(
            build, probe, build_key, probe_key, fragments,
            num_fragments, fragment_hash_partition,
        )
    return fragments
