"""The JEN coordinator (paper Section 4.1).

Three responsibilities, reproduced directly:

1. manage the worker registry (which workers are up);
2. broker connections between DB2 workers and JEN workers — the grouped
   endpoint mapping of Figure 5 — and expose the agreed shuffle hash so
   database workers can address the right JEN worker directly;
3. resolve HDFS table metadata from HCatalog, fetch block locations
   from the NameNode, and hand out locality-aware block assignments.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import CatalogError
from repro.hdfs.filesystem import HdfsFileSystem, HdfsTableMeta
from repro.jen.scheduler import BlockAssignment, assign_blocks
from repro.net.transfer import grouped_assignment


class JenCoordinator:
    """Central metadata and connection broker for the JEN workers."""

    def __init__(self, filesystem: HdfsFileSystem, num_workers: int,
                 locality: bool = True):
        if num_workers <= 0:
            raise CatalogError("JEN needs at least one worker")
        self.filesystem = filesystem
        self.num_workers = num_workers
        self.locality = locality
        self._live_workers: Dict[int, bool] = {
            worker: True for worker in range(num_workers)
        }
        self._assignments: Dict[str, BlockAssignment] = {}

    # ------------------------------------------------------------------
    # Worker registry
    # ------------------------------------------------------------------
    def live_workers(self) -> List[int]:
        """Ids of workers currently up."""
        return [worker for worker, up in self._live_workers.items() if up]

    def mark_worker(self, worker_id: int, up: bool) -> None:
        """Record a worker joining or leaving."""
        if worker_id not in self._live_workers:
            raise CatalogError(f"unknown JEN worker {worker_id}")
        self._live_workers[worker_id] = up
        # Any cached assignment is invalid once membership changes.
        self._assignments.clear()

    def reassign_blocks(self, dead_worker: int, blocks
                        ) -> List[Tuple[int, List]]:
        """Redistribute a crashed worker's blocks over the survivors.

        Called mid-scan when a fault plan kills ``dead_worker``: its
        partial output is discarded, so *all* of its blocks (scanned and
        un-scanned alike) are dealt round-robin to the live workers.
        Returns ``(survivor_id, blocks)`` pairs, deterministically
        ordered, omitting survivors with nothing to do.
        """
        survivors = [worker for worker in self.live_workers()
                     if worker != dead_worker]
        if not survivors:
            raise CatalogError(
                f"no survivors to take over worker {dead_worker}'s blocks"
            )
        per_survivor: Dict[int, List] = {worker: [] for worker in survivors}
        for position, block in enumerate(blocks):
            per_survivor[survivors[position % len(survivors)]].append(block)
        return [(worker, assigned)
                for worker, assigned in per_survivor.items() if assigned]

    def speculative_worker(self, straggler: int) -> int:
        """The worker that runs a backup copy of a straggler's task.

        The least-loaded policy degenerates to "lowest live id that is
        not the straggler" here, because scan assignments are balanced;
        raises when the straggler is the only worker left.
        """
        for worker in self.live_workers():
            if worker != straggler:
                return worker
        raise CatalogError(
            f"no worker available to speculate for straggler {straggler}"
        )

    # ------------------------------------------------------------------
    # Metadata + scheduling
    # ------------------------------------------------------------------
    def table_meta(self, table_name: str) -> HdfsTableMeta:
        """HCatalog lookup on behalf of the DB2 workers."""
        return self.filesystem.table_meta(table_name)

    def plan_scan(self, table_name: str) -> BlockAssignment:
        """Block assignment for a scan of ``table_name`` (cached).

        Only live workers receive blocks; after a failure the plan is
        recomputed and blocks whose replicas sat on the dead node become
        remote reads on the survivors.
        """
        if table_name not in self._assignments:
            blocks = self.filesystem.table_blocks(table_name)
            live = self.live_workers()
            if not live:
                raise CatalogError("no live JEN workers")
            self._assignments[table_name] = assign_blocks(
                blocks, live, locality=self.locality
            )
        return self._assignments[table_name]

    # ------------------------------------------------------------------
    # Connection brokering (paper Fig. 5)
    # ------------------------------------------------------------------
    def db_worker_groups(self, num_db_workers: int) -> List[List[int]]:
        """JEN worker group each DB worker connects to for ingest."""
        return grouped_assignment(len(self.live_workers()), num_db_workers)

    def designated_worker(self) -> int:
        """The worker that merges Bloom filters and final aggregates."""
        live = self.live_workers()
        if not live:
            raise CatalogError("no live JEN workers")
        return live[0]
