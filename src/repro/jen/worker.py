"""A JEN worker: scan, process pipeline, shuffle partitioning, join.

One worker runs on each DataNode.  Its scan applies, in stream order,
exactly the process-thread pipeline of the paper's Figure 7: parse rows
(format-aware), evaluate local predicates, project, compute derived
columns, apply the database Bloom filter if one was pushed down, and
optionally populate the local HDFS-side Bloom filter — all before the
record enters a send buffer for the shuffle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bloom import BloomFilter, probe_and_insert
from repro.edw.partitioner import agreed_hash_partition
from repro.hdfs.blocks import Block
from repro.kernels.partition import partition_table
from repro.hdfs.filesystem import HdfsFileSystem, HdfsTableMeta
from repro.relational.expressions import Predicate
from repro.relational.table import Table
from repro.query.query import DerivedColumn, HybridQuery
from repro.adaptive import hooks as adaptive_hooks
from repro.testkit import invariants


@dataclass(frozen=True)
class ScanRequest:
    """What a JEN worker applies while scanning, in stream order.

    This is exactly the information the paper's ``read_hdfs`` UDF pushes
    down (Section 4.1.1): predicates, the projected columns, the
    database Bloom filter and the join-key column it applies to — plus
    the scan-time derived columns of the query layer.
    """

    predicate: Predicate
    projection: Tuple[str, ...]
    derived: Tuple[DerivedColumn, ...]
    wire_columns: Tuple[str, ...]
    join_key: Optional[str] = None

    @classmethod
    def from_query(cls, query: HybridQuery) -> "ScanRequest":
        """The scan request implied by a hybrid query."""
        return cls(
            predicate=query.hdfs_predicate,
            projection=tuple(query.hdfs_projection),
            derived=tuple(query.hdfs_derived),
            wire_columns=tuple(query.hdfs_wire_columns()),
            join_key=query.hdfs_join_key,
        )

    def apply_derivations(self, table: Table) -> Table:
        """Compute the scan-time derived columns."""
        for derived in self.derived:
            table = derived.apply(table)
        return table


@dataclass
class ScanStats:
    """What one worker's scan touched and produced."""

    rows_scanned: int = 0
    stored_bytes_scanned: float = 0.0
    rows_after_predicates: int = 0
    rows_after_bloom: int = 0
    local_blocks: int = 0
    remote_blocks: int = 0
    #: Rows a crashed worker had produced before dying — wasted work,
    #: kept out of the exactly-once counters above.
    rows_discarded: int = 0
    #: Blocks handed to survivors after a mid-scan crash.
    blocks_reassigned: int = 0

    def merge(self, other: "ScanStats") -> "ScanStats":
        """Combine stats across workers."""
        return ScanStats(
            rows_scanned=self.rows_scanned + other.rows_scanned,
            stored_bytes_scanned=(
                self.stored_bytes_scanned + other.stored_bytes_scanned
            ),
            rows_after_predicates=(
                self.rows_after_predicates + other.rows_after_predicates
            ),
            rows_after_bloom=self.rows_after_bloom + other.rows_after_bloom,
            local_blocks=self.local_blocks + other.local_blocks,
            remote_blocks=self.remote_blocks + other.remote_blocks,
            rows_discarded=self.rows_discarded + other.rows_discarded,
            blocks_reassigned=(
                self.blocks_reassigned + other.blocks_reassigned
            ),
        )


class JenWorker:
    """One multi-threaded worker process of the JEN engine."""

    def __init__(self, worker_id: int, filesystem: HdfsFileSystem):
        self.worker_id = worker_id
        self.filesystem = filesystem

    def scan_filter_project(
        self,
        meta: HdfsTableMeta,
        blocks: Sequence[Block],
        request: ScanRequest,
        db_bloom: Optional[BloomFilter] = None,
        local_bloom: Optional[BloomFilter] = None,
        faults=None,
    ) -> Tuple[Table, ScanStats]:
        """Scan assigned blocks through the full process pipeline.

        Returns the wire-ready table (projection plus derived columns,
        all filters applied) and the scan statistics.  If ``local_bloom``
        is given, the join keys that survive are inserted into it — the
        zigzag join's BF_H build happens inside the scan, not as an
        extra pass (Section 4.4).

        ``faults`` is an optional hook with a ``before_block(worker_id,
        index, stats)`` method, consulted before every block read; the
        fault injector uses it to kill the worker mid-scan (by raising
        out of the loop with the partial stats attached).
        """
        storage_format = meta.storage_format()
        scan_row_bytes = storage_format.scan_bytes_per_row(
            meta.schema, list(request.projection)
        )
        stats = ScanStats()
        pieces: List[Table] = []
        for index, block in enumerate(blocks):
            if faults is not None:
                faults.before_block(self.worker_id, index, stats)
            local = self.filesystem.datanodes[self.worker_id].has_replica(
                block.block_id
            ) if self.worker_id < len(self.filesystem.datanodes) else False
            rows = self.filesystem.read_block(
                block,
                preferred_node=self.worker_id if local else None,
            )
            if local:
                stats.local_blocks += 1
            else:
                stats.remote_blocks += 1
            stats.rows_scanned += rows.num_rows
            stats.stored_bytes_scanned += rows.num_rows * scan_row_bytes

            wire, after_predicates, after_bloom = self.process_rows(
                rows, request, db_bloom=db_bloom, local_bloom=local_bloom
            )
            stats.rows_after_predicates += after_predicates
            stats.rows_after_bloom += after_bloom
            pieces.append(wire)
            if adaptive_hooks.skew_detection_active() \
                    and request.join_key is not None \
                    and request.join_key in wire.schema.names:
                # Feed the heavy-hitter detector from the same per-block
                # seam the adaptive plane uses — no second pass over L.
                adaptive_hooks.record_scan_keys(
                    wire.column(request.join_key)
                )
            # One fully processed block: the adaptive plane's finest
            # observation grain (may raise SwitchSignal at a crossed
            # decision checkpoint).
            adaptive_hooks.record_scan_block(
                rows.num_rows, rows.num_rows * scan_row_bytes,
                after_predicates, after_bloom,
                db_bloom is not None and request.join_key is not None,
            )

        if pieces:
            wire = Table.concat(pieces)
        else:
            # No blocks assigned: produce an empty wire table by running
            # the pipeline over an empty slice of the table schema.
            sample = self.filesystem.table_blocks(meta.name)[0]
            empty = self.filesystem.read_block(sample).slice(0, 0)
            empty = empty.project(list(request.projection))
            empty = request.apply_derivations(empty)
            wire = empty.project(list(request.wire_columns))
        return wire, stats

    @staticmethod
    def process_rows(
        rows: Table,
        request: ScanRequest,
        db_bloom: Optional[BloomFilter] = None,
        local_bloom: Optional[BloomFilter] = None,
    ) -> Tuple[Table, int, int]:
        """The per-batch process pipeline: one batch of parsed rows in,
        one wire-ready table out.

        Applied identically to a worker's whole block (sequential scan
        above) and to a single morsel of it (the process-pool backend's
        :mod:`repro.parallel.tasks`), so the two backends cannot drift.
        Returns ``(wire, rows_after_predicates, rows_after_bloom)``.
        """
        mask = request.predicate.evaluate(rows)
        filtered = rows.filter(mask).project(list(request.projection))
        after_predicates = filtered.num_rows
        filtered = request.apply_derivations(filtered)
        if db_bloom is not None and request.join_key is not None:
            keys = filtered.column(request.join_key)
            if local_bloom is not None:
                # Zigzag two-way step, fused: probe BF_DB and feed
                # the survivors into BF_H in one pass over the keys.
                keep = probe_and_insert(keys, db_bloom, local_bloom)
            else:
                keep = db_bloom.contains(keys)
            filtered = filtered.filter(keep)
        elif local_bloom is not None and request.join_key is not None:
            local_bloom.add(filtered.column(request.join_key))
        wire = filtered.project(list(request.wire_columns))
        return wire, after_predicates, filtered.num_rows

    @staticmethod
    def partition_for_shuffle(table: Table, key: str,
                              num_workers: int) -> List[Table]:
        """Split the wire table by the agreed hash for the shuffle.

        Single-pass kernel: one sort + one gather for all destinations;
        the returned partitions are zero-copy row-range views.
        """
        assignments = agreed_hash_partition(table.column(key), num_workers)
        parts = partition_table(table, assignments, num_workers)
        if invariants.checking_enabled():
            invariants.check_hash_partition(
                table, key, parts, num_workers, agreed_hash_partition
            )
        return parts

    @staticmethod
    def partition_for_hybrid_shuffle(
        table: Table, key: str, num_workers: int,
        hot_keys, sender_offset: int = 0,
    ) -> Tuple[List[Table], int]:
        """Hybrid split: spread hot keys, agreed-hash the cold tail.

        Rows of a detected hot key are dealt round-robin across that
        key's bounded destination set — ``fanout`` consecutive workers
        starting at the key's agreed-hash home — with different senders
        starting their deal at different offsets; every other row keeps
        the agreed hash.  Each hot row still lands on exactly *one*
        worker — the matching probe-side rows are duplicated to the
        same destination set
        (:func:`repro.core.joins.repartition._route_db_rows`), which is
        what keeps every (l, t) pair produced exactly once.

        ``hot_keys`` is a :class:`repro.skew.HotKeySet`.  Returns
        ``(parts, hot_rows)`` where ``hot_rows`` counts the rows that
        left the agreed-hash route.
        """
        keys = table.column(key)
        assignments = agreed_hash_partition(keys, num_workers)
        dest_lists = hot_keys.destination_lists(
            num_workers, agreed_hash_partition
        )
        hot_rows = 0
        copied = False
        for hot_key, dests in zip(hot_keys.keys, dest_lists):
            index = np.flatnonzero(keys == hot_key)
            if index.size == 0:
                continue
            if not copied:
                assignments = assignments.copy()
                copied = True
            assignments[index] = dests[
                (sender_offset + np.arange(index.size)) % dests.size
            ]
            hot_rows += int(index.size)
        parts = partition_table(table, assignments, num_workers)
        if invariants.checking_enabled():
            invariants.check_hybrid_partition(
                table, key, parts, num_workers, agreed_hash_partition,
                hot_keys.keys, fanouts=hot_keys.fanouts,
            )
        return parts, hot_rows
