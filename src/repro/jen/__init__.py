"""JEN: the join execution engine on HDFS (paper Section 4).

A coordinator plus one worker per DataNode.  The coordinator resolves
table metadata from HCatalog, asks the NameNode for block locations,
hands out locality-aware balanced block assignments, and brokers the
connections between database workers and JEN workers.  Workers run the
scan → filter/project/Bloom → shuffle → hash-join → partial-aggregate
pipeline; a designated worker merges Bloom filters and final aggregates.
"""

from repro.jen.scheduler import BlockAssignment, assign_blocks
from repro.jen.coordinator import JenCoordinator
from repro.jen.worker import JenWorker, ScanStats
from repro.jen.exchange import ShuffleResult, combine_blooms, shuffle
from repro.jen.engine import Jen

__all__ = [
    "BlockAssignment",
    "Jen",
    "JenCoordinator",
    "JenWorker",
    "ScanStats",
    "ShuffleResult",
    "assign_blocks",
    "combine_blooms",
    "shuffle",
]
