"""The Jen facade: the whole HDFS-side engine behind one object.

Join algorithms talk to this class: it wires the coordinator and the
workers, runs distributed scans (optionally with a pushed-down database
Bloom filter and/or a local Bloom-filter build), executes the agreed-hash
shuffle, and finishes local joins with partial plus final aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.config import HybridConfig
from repro.core.bloom import BloomFilter
from repro.errors import JoinError
from repro.hdfs.filesystem import HdfsFileSystem
from repro.jen.coordinator import JenCoordinator
from repro.jen.exchange import ShuffleResult, combine_blooms, final_aggregate, shuffle
from repro.jen.worker import JenWorker, ScanRequest, ScanStats
from repro.relational.table import Table
from repro.query.plan import local_join, local_partial_aggregate
from repro.query.query import HybridQuery


@dataclass
class DistributedScanResult:
    """Per-worker wire tables plus merged statistics."""

    wire_tables: List[Table]
    stats: ScanStats
    local_blooms: Optional[List[BloomFilter]] = None

    def global_bloom(self) -> BloomFilter:
        """Merge the per-worker Bloom filters (zigzag step 3b/4)."""
        if not self.local_blooms:
            raise JoinError("scan was not run with a local Bloom build")
        return combine_blooms(self.local_blooms)


@dataclass
class LocalJoinStats:
    """Volume accounting of the distributed local-join stage."""

    build_tuples: int = 0
    probe_tuples: int = 0
    join_output_tuples: int = 0
    result_rows: int = 0
    #: Tuples written to and re-read from disk by spilling workers
    #: (Grace-hash fragmenting; 0 when everything fits in memory).
    spilled_tuples: int = 0
    #: Largest fragment count any worker needed.
    max_fragments: int = 1


class Jen:
    """Coordinator + workers of the HDFS-side execution engine."""

    def __init__(self, filesystem: HdfsFileSystem, config: HybridConfig,
                 locality: bool = True):
        self.filesystem = filesystem
        self.config = config
        num_workers = config.cluster.jen_workers()
        self.coordinator = JenCoordinator(
            filesystem, num_workers, locality=locality
        )
        self.workers = [
            JenWorker(worker_id, filesystem)
            for worker_id in range(num_workers)
        ]

    @property
    def num_workers(self) -> int:
        """Number of live JEN workers."""
        return len(self.workers)

    def fail_worker(self, worker_id: int) -> None:
        """Take one worker out of service (paper Section 4.1: the
        coordinator manages worker state "so that workers know which
        other workers are up and running").

        Subsequent scans re-plan over the survivors; blocks whose only
        local replica sat on the dead node are read remotely.
        """
        if not any(w.worker_id == worker_id for w in self.workers):
            raise JoinError(f"no live JEN worker {worker_id}")
        if len(self.workers) == 1:
            raise JoinError("cannot fail the last JEN worker")
        self.workers = [
            worker for worker in self.workers
            if worker.worker_id != worker_id
        ]
        self.coordinator.mark_worker(worker_id, up=False)

    # ------------------------------------------------------------------
    def distributed_scan(
        self,
        query: HybridQuery,
        db_bloom: Optional[BloomFilter] = None,
        build_local_blooms: bool = False,
        bloom_seed: int = 11,
    ) -> DistributedScanResult:
        """Scan the query's HDFS table on every worker.

        ``db_bloom`` is the pushed-down database Bloom filter;
        ``build_local_blooms`` additionally populates one local filter
        per worker during the scan (the zigzag join's BF_H build).
        """
        return self.scan_with_request(
            query.hdfs_table,
            ScanRequest.from_query(query),
            db_bloom=db_bloom,
            build_local_blooms=build_local_blooms,
            bloom_seed=bloom_seed,
        )

    def scan_with_request(
        self,
        table_name: str,
        request: ScanRequest,
        db_bloom: Optional[BloomFilter] = None,
        build_local_blooms: bool = False,
        bloom_seed: int = 11,
    ) -> DistributedScanResult:
        """Query-independent distributed scan (the read_hdfs path)."""
        meta = self.coordinator.table_meta(table_name)
        assignment = self.coordinator.plan_scan(table_name)
        local_blooms: Optional[List[BloomFilter]] = None
        if build_local_blooms:
            local_blooms = [
                BloomFilter(
                    self.config.bloom_bits(),
                    self.config.bloom.num_hashes,
                    seed=bloom_seed,
                )
                for _ in self.workers
            ]
        wire_tables: List[Table] = []
        merged = ScanStats()
        for position, worker in enumerate(self.workers):
            wire, stats = worker.scan_filter_project(
                meta,
                assignment.blocks_for(worker.worker_id),
                request,
                db_bloom=db_bloom,
                local_bloom=(
                    local_blooms[position] if local_blooms else None
                ),
            )
            wire_tables.append(wire)
            merged = merged.merge(stats)
        return DistributedScanResult(
            wire_tables=wire_tables,
            stats=merged,
            local_blooms=local_blooms,
        )

    # ------------------------------------------------------------------
    def shuffle_by_key(self, wire_tables: List[Table],
                       key: str) -> ShuffleResult:
        """All-to-all shuffle of the wire tables on the agreed hash."""
        outgoing = [
            JenWorker.partition_for_shuffle(wire, key, self.num_workers)
            for wire in wire_tables
        ]
        return shuffle(outgoing)

    # ------------------------------------------------------------------
    def join_and_aggregate(
        self,
        l_parts: List[Table],
        t_parts: List[Table],
        query: HybridQuery,
        memory_budget_rows: float = 0.0,
    ) -> Tuple[Table, LocalJoinStats]:
        """Local hash joins on every worker, then the final aggregate.

        ``l_parts[i]`` is worker *i*'s build side (filtered HDFS rows it
        received), ``t_parts[i]`` its probe side (database rows that
        arrived addressed by the agreed hash).

        ``memory_budget_rows`` is the per-worker in-memory build limit at
        the data-plane scale; workers whose build side exceeds it spill
        via Grace-hash fragmenting (:mod:`repro.jen.spill`).  Zero means
        unlimited — the paper's current JEN, which "requires that all
        data fit in memory".
        """
        if len(l_parts) != self.num_workers or len(t_parts) != self.num_workers:
            raise JoinError(
                "join_and_aggregate needs one part per worker on both sides"
            )
        from repro.jen.spill import fragment_tables, plan_spill

        stats = LocalJoinStats()
        partials: List[Table] = []
        for l_part, t_part in zip(l_parts, t_parts):
            plan = plan_spill(
                l_part.num_rows, t_part.num_rows, memory_budget_rows
            )
            stats.spilled_tuples += plan.spilled_tuples()
            stats.max_fragments = max(stats.max_fragments,
                                      plan.num_fragments)
            worker_partials: List[Table] = []
            for build_frag, probe_frag in fragment_tables(
                l_part, t_part, query.hdfs_join_key, query.db_join_key,
                plan.num_fragments,
            ):
                joined = local_join(probe_frag, build_frag, query)
                stats.join_output_tuples += joined.num_rows
                worker_partials.append(
                    local_partial_aggregate(joined, query)
                )
            stats.build_tuples += l_part.num_rows
            stats.probe_tuples += t_part.num_rows
            partials.append(final_aggregate(worker_partials, query))
        result = final_aggregate(partials, query)
        stats.result_rows = result.num_rows
        return result, stats
