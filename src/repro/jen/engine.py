"""The Jen facade: the whole HDFS-side engine behind one object.

Join algorithms talk to this class: it wires the coordinator and the
workers, runs distributed scans (optionally with a pushed-down database
Bloom filter and/or a local Bloom-filter build), executes the agreed-hash
shuffle, and finishes local joins with partial plus final aggregation.

Fault tolerance: arming a :class:`~repro.faults.FaultPlan` (via
:meth:`Jen.arm_faults`) turns on mid-query failure handling.  Scans run
as a work queue — when an injected crash kills a worker, its partial
output is discarded and the coordinator deals its blocks to the
survivors; shuffle-time crashes re-produce the victim's filtered rows on
a survivor; message drops retry with backoff and re-delivered partitions
are suppressed by the receivers.  Results stay bit-identical to the
fault-free run while every recovery is charged on the trace.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.adaptive import hooks as adaptive_hooks
from repro.config import HybridConfig
from repro.core.bloom import BloomFilter
from repro.errors import CatalogError, FaultError, JoinError, WorkerCrashError
from repro.faults import CrashSignal, FaultInjector, FaultPlan, ScanFaultHook
from repro.hdfs.filesystem import HdfsFileSystem, HdfsTableMeta
from repro.jen.coordinator import JenCoordinator
from repro.jen.exchange import ShuffleResult, combine_blooms, final_aggregate, shuffle
from repro.jen.worker import JenWorker, ScanRequest, ScanStats
from repro.latemat import LateMatPlan, StitchStats
from repro.net.transfer import RetryPolicy
from repro.relational.table import Table
from repro.query.plan import local_join, local_partial_aggregate
from repro.query.query import HybridQuery


@dataclass
class DistributedScanResult:
    """Per-worker wire tables plus merged statistics."""

    wire_tables: List[Table]
    stats: ScanStats
    local_blooms: Optional[List[BloomFilter]] = None
    #: Heavy-hitter join keys detected during the scan (sorted int64
    #: array, possibly empty); ``None`` when skew handling is off.
    hot_keys: Optional[object] = None

    def global_bloom(self) -> BloomFilter:
        """Merge the per-worker Bloom filters (zigzag step 3b/4)."""
        if not self.local_blooms:
            raise JoinError("scan was not run with a local Bloom build")
        return combine_blooms(self.local_blooms)


@dataclass
class LocalJoinStats:
    """Volume accounting of the distributed local-join stage."""

    build_tuples: int = 0
    probe_tuples: int = 0
    join_output_tuples: int = 0
    result_rows: int = 0
    #: Tuples written to and re-read from disk by spilling workers
    #: (Grace-hash fragmenting; 0 when everything fits in memory).
    spilled_tuples: int = 0
    #: Largest fragment count any worker needed.
    max_fragments: int = 1
    #: Build + probe rows re-dealt to other workers by work stealing.
    stolen_tuples: int = 0
    #: max/mean per-worker join load before and after stealing
    #: (1.0 both when stealing never armed or never triggered).
    pre_steal_balance: float = 1.0
    post_steal_balance: float = 1.0
    #: Per-worker build + probe rows after any stealing (the sequential
    #: path fills this; the bench derives worker-finish spread from it).
    per_slot_loads: Optional[List[int]] = None
    #: Late-materialization stitch accounting
    #: (:class:`repro.latemat.StitchStats`); ``None`` when the join ran
    #: on full-width parts.
    stitch: Optional[StitchStats] = None
    #: Measured wire-codec bytes of spilled fragments (what actually
    #: hits the disk with late materialization on; 0 otherwise).
    spilled_wire_bytes: int = 0


class Jen:
    """Coordinator + workers of the HDFS-side execution engine."""

    def __init__(self, filesystem: HdfsFileSystem, config: HybridConfig,
                 locality: bool = True):
        self.filesystem = filesystem
        self.config = config
        num_workers = config.cluster.jen_workers()
        self.coordinator = JenCoordinator(
            filesystem, num_workers, locality=locality
        )
        self.workers = [
            JenWorker(worker_id, filesystem)
            for worker_id in range(num_workers)
        ]
        self._scan_depth = 0
        self._injector: Optional[FaultInjector] = None
        #: Shuffle matrix produced by a fused parallel scan, keyed by
        #: the identities of the wire tables it partitioned; consumed
        #: by the next :meth:`shuffle_by_key` over those same tables.
        self._shuffle_stash: Optional[Tuple[List[int], str,
                                            List[List[Table]]]] = None
        #: Optional hook ``(worker_slot, build_keys) -> JoinBuildIndex``
        #: consulted by :meth:`join_and_aggregate` for each worker's
        #: build side.  The service plane installs a caching provider
        #: here so repeated queries over an unchanged build reuse the
        #: sorted index; ``None`` means build a fresh index per worker.
        self.build_index_provider = None

    @property
    def num_workers(self) -> int:
        """Number of live JEN workers."""
        return len(self.workers)

    # ------------------------------------------------------------------
    # Worker membership + fault plans
    # ------------------------------------------------------------------
    def fail_worker(self, worker_id: int) -> None:
        """Take one worker out of service (paper Section 4.1: the
        coordinator manages worker state "so that workers know which
        other workers are up and running").

        Subsequent scans re-plan over the survivors; blocks whose only
        local replica sat on the dead node are read remotely.

        Mid-scan failures must be driven by an armed
        :class:`~repro.faults.FaultPlan` (``crash:w<id>@scan``) so the
        engine can recover deterministically; calling this while a scan
        is in flight without one raises :class:`~repro.errors.FaultError`.
        """
        if not any(w.worker_id == worker_id for w in self.workers):
            raise JoinError(f"no live JEN worker {worker_id}")
        if len(self.workers) == 1:
            raise JoinError("cannot fail the last JEN worker")
        if self._scan_depth > 0 and self._active_injector() is None:
            raise FaultError(
                f"a scan is in flight: failing worker {worker_id} now has "
                "no defined semantics — inject the crash through an armed "
                "FaultPlan (Jen.arm_faults('crash:w"
                f"{worker_id}@scan')) so the engine can recover, or fail "
                "the worker between queries"
            )
        self._remove_worker(worker_id)

    def restore_workers(self) -> None:
        """Bring the cluster back to full strength (chaos-run helper).

        Re-creates the configured worker set and marks everyone up, so
        one warehouse can host many fault scenarios back to back.
        """
        if self._scan_depth > 0:
            raise JoinError("cannot restore workers mid-scan")
        num_workers = self.config.cluster.jen_workers()
        self.workers = [
            JenWorker(worker_id, self.filesystem)
            for worker_id in range(num_workers)
        ]
        for worker_id in range(num_workers):
            self.coordinator.mark_worker(worker_id, up=True)

    def arm_faults(self, plan: Union[FaultPlan, str], seed: int = 11,
                   retry_policy: Optional[RetryPolicy] = None,
                   detect_fraction: float = 0.25) -> FaultInjector:
        """Arm a fault plan (object or spec string) for subsequent runs.

        Returns the :class:`~repro.faults.FaultInjector`, whose fired
        log, counters and :meth:`~repro.faults.FaultInjector.report`
        describe everything that happened.
        """
        if isinstance(plan, str):
            plan = FaultPlan.from_spec(plan, seed=seed)
        self._injector = FaultInjector(
            plan, retry_policy=retry_policy,
            detect_fraction=detect_fraction,
        )
        return self._injector

    def disarm_faults(self) -> None:
        """Drop the armed fault plan (fault-free runs again)."""
        self._injector = None

    @property
    def injector(self) -> Optional[FaultInjector]:
        """The armed fault injector, if any."""
        return self._injector

    def _active_injector(self) -> Optional[FaultInjector]:
        if self._injector is not None and self._injector.armed:
            return self._injector
        return None

    def _remove_worker(self, worker_id: int) -> None:
        self.workers = [
            worker for worker in self.workers
            if worker.worker_id != worker_id
        ]
        self.coordinator.mark_worker(worker_id, up=False)

    # ------------------------------------------------------------------
    def distributed_scan(
        self,
        query: HybridQuery,
        db_bloom: Optional[BloomFilter] = None,
        build_local_blooms: bool = False,
        bloom_seed: int = 11,
    ) -> DistributedScanResult:
        """Scan the query's HDFS table on every worker.

        ``db_bloom`` is the pushed-down database Bloom filter;
        ``build_local_blooms`` additionally populates one local filter
        per worker during the scan (the zigzag join's BF_H build).
        """
        return self.scan_with_request(
            query.hdfs_table,
            ScanRequest.from_query(query),
            db_bloom=db_bloom,
            build_local_blooms=build_local_blooms,
            bloom_seed=bloom_seed,
        )

    def scan_with_request(
        self,
        table_name: str,
        request: ScanRequest,
        db_bloom: Optional[BloomFilter] = None,
        build_local_blooms: bool = False,
        bloom_seed: int = 11,
    ) -> DistributedScanResult:
        """Query-independent distributed scan (the read_hdfs path)."""
        injector = self._active_injector()
        if injector is not None:
            injector.check_abort("scan")
        meta = self.coordinator.table_meta(table_name)
        self._scan_depth += 1
        try:
            from repro import parallel

            detector = self._skew_detector(request)
            if injector is not None:
                # Deterministic fault replay needs the sequential work
                # queue, so the process backend only handles fault-free
                # scans.
                parallel.record_fallback("jen.scan", "fault-plan-armed")
            elif adaptive_hooks.adaptive_active():
                # Decision checkpoints observe the scan block by block;
                # the fused parallel scan has no per-block seam to
                # interrupt.
                parallel.record_fallback("jen.scan", "adaptive-active")
            elif detector is not None:
                # Heavy-hitter detection rides the per-block scan hooks,
                # which the fused parallel scan bypasses (and its
                # pre-partitioned shuffle stash assumes a pure agreed
                # hash, which a hybrid shuffle would invalidate).
                parallel.record_fallback("jen.scan", "skew-handling")
            else:
                result = self._try_parallel_scan(
                    meta, request, db_bloom, build_local_blooms,
                    bloom_seed,
                )
                if result is not None:
                    return result
            with adaptive_hooks.detecting_skew(detector):
                result = self._run_scan_queue(
                    meta, request, db_bloom, build_local_blooms,
                    bloom_seed, injector,
                )
            if detector is not None:
                result.hot_keys = detector.hot_key_set()
            return result
        finally:
            self._scan_depth -= 1

    def scan_sampled_blocks(
        self,
        table_name: str,
        request: ScanRequest,
        blocks,
        db_bloom: Optional[BloomFilter] = None,
    ):
        """Scan individual blocks one at a time, yielding per-block wire
        tables (the approximate tier's morsel stream).

        Each block runs on the worker owning its primary replica (local
        read when the sampled node is a live worker, remote otherwise) —
        the same locality rule the full scan's scheduler applies, so a
        sampled scan's per-block cost profile matches a full scan's.
        Yields ``(wire_table, ScanStats)`` per block; the consumer
        decides when to stop drawing, which is what makes progressive
        refinement possible.

        Fault plans are deliberately unsupported: the block-at-a-time
        stream has no work-queue recovery semantics, and a degraded
        (approximate) run under injected faults would conflate two
        failure domains.  Callers fall back to the exact tier instead.
        """
        if self._active_injector() is not None:
            raise JoinError(
                "sampled scans do not support armed fault plans; run the "
                "exact tier under fault injection instead"
            )
        meta = self.coordinator.table_meta(table_name)
        by_id = {worker.worker_id: worker for worker in self.workers}

        def owner(block):
            for node_id in block.replicas:
                if node_id in by_id:
                    return by_id[node_id]
            return self.workers[block.block_id % len(self.workers)]

        self._scan_depth += 1
        try:
            for block in blocks:
                wire, stats = owner(block).scan_filter_project(
                    meta, [block], request, db_bloom=db_bloom
                )
                yield wire, stats
        finally:
            self._scan_depth -= 1

    def _skew_detector(self, request: ScanRequest):
        """A fresh heavy-hitter detector, or ``None`` when not needed.

        Detection is pointless without a join key to observe or with a
        single worker (nothing to balance).
        """
        from repro import skew as skew_plane

        if not skew_plane.skew_handling_enabled():
            return None
        if request.join_key is None or self.num_workers <= 1:
            return None
        return skew_plane.HeavyHitterDetector(self.num_workers)

    def _try_parallel_scan(
        self,
        meta: HdfsTableMeta,
        request: ScanRequest,
        db_bloom: Optional[BloomFilter],
        build_local_blooms: bool,
        bloom_seed: int,
    ) -> Optional[DistributedScanResult]:
        """The scan on the process-pool backend, or ``None`` to fall
        back (backend not selected, or the request cannot cross the
        process boundary)."""
        from repro import parallel

        if not parallel.parallel_enabled():
            return None
        from repro.parallel.scan import parallel_distributed_scan

        backend = parallel.get_backend(parallel.pool_workers())
        try:
            outcome = parallel_distributed_scan(
                filesystem=self.filesystem,
                workers=self.workers,
                assignment=self.coordinator.plan_scan(meta.name),
                meta=meta,
                request=request,
                db_bloom=db_bloom,
                build_local_blooms=build_local_blooms,
                bloom_bits=self.config.bloom_bits(),
                bloom_hashes=self.config.bloom.num_hashes,
                bloom_seed=bloom_seed,
                backend=backend,
            )
        except parallel.ParallelUnsupported:
            parallel.record_fallback("jen.scan", "unsupported-payload")
            return None
        if outcome.outgoing is not None:
            self._shuffle_stash = (
                [id(wire) for wire in outcome.wire_tables],
                outcome.shuffle_key,
                outcome.outgoing,
            )
        return DistributedScanResult(
            wire_tables=outcome.wire_tables,
            stats=outcome.stats,
            local_blooms=outcome.local_blooms,
        )

    def _run_scan_queue(
        self,
        meta: HdfsTableMeta,
        request: ScanRequest,
        db_bloom: Optional[BloomFilter],
        build_local_blooms: bool,
        bloom_seed: int,
        injector: Optional[FaultInjector],
    ) -> DistributedScanResult:
        """The scan as a work queue of (worker, blocks) tasks.

        Fault-free this degenerates to one task per worker, exactly the
        original single-pass scan.  With an armed injector, a crashing
        worker's task raises mid-loop: its partial output is discarded
        and its blocks come back as recovery tasks on the survivors, so
        every block is scanned into the result exactly once.
        """
        assignment = self.coordinator.plan_scan(meta.name)
        blooms: Dict[int, BloomFilter] = {}
        if build_local_blooms:
            blooms = {
                worker.worker_id: BloomFilter(
                    self.config.bloom_bits(),
                    self.config.bloom.num_hashes,
                    seed=bloom_seed,
                )
                for worker in self.workers
            }
        tasks = deque(
            (worker, list(assignment.blocks_for(worker.worker_id)))
            for worker in self.workers
        )
        adaptive_hooks.scan_begin(
            sum(len(blocks) for _worker, blocks in tasks)
        )
        pieces: Dict[int, List[Table]] = {
            worker.worker_id: [] for worker in self.workers
        }
        merged = ScanStats()
        while tasks:
            worker, blocks = tasks.popleft()
            if worker not in self.workers:
                # The owner of this recovery task died after it was
                # queued (a second crash event); deal its blocks out
                # again.
                self._requeue(worker.worker_id, blocks, tasks)
                continue
            hook = None
            if injector is not None:
                crash_at = injector.scan_crash_block(
                    worker.worker_id, len(blocks)
                )
                if crash_at is not None:
                    if not blocks:
                        self._scan_crash(worker, blocks, ScanStats(),
                                         injector, tasks, pieces, blooms,
                                         merged)
                        continue
                    hook = ScanFaultHook(crash_at)
            try:
                wire, stats = worker.scan_filter_project(
                    meta, blocks, request,
                    db_bloom=db_bloom,
                    local_bloom=blooms.get(worker.worker_id),
                    faults=hook,
                )
            except CrashSignal as signal:
                self._scan_crash(worker, blocks, signal.stats, injector,
                                 tasks, pieces, blooms, merged)
                continue
            pieces[worker.worker_id].append(wire)
            merged = merged.merge(stats)

        if injector is not None:
            self._record_stragglers(injector)
        wire_tables = [
            Table.concat(pieces[worker.worker_id])
            for worker in self.workers
        ]
        local_blooms = (
            [blooms[worker.worker_id] for worker in self.workers]
            if build_local_blooms else None
        )
        return DistributedScanResult(
            wire_tables=wire_tables,
            stats=merged,
            local_blooms=local_blooms,
        )

    def _scan_crash(self, worker: JenWorker, blocks, partial: ScanStats,
                    injector: FaultInjector, tasks, pieces, blooms,
                    merged: ScanStats) -> None:
        """Recover from a mid-scan crash (or raise if unrecoverable)."""
        survivors = len(self.workers) - 1
        if survivors == 0:
            # The crash event has fired, so a service-plane retry of the
            # whole query runs fault-free.
            raise WorkerCrashError(
                f"worker {worker.worker_id} crashed during scan and no "
                "survivors remain",
                worker_id=worker.worker_id, phase="scan",
                rows_lost=partial.rows_scanned,
            )
        self._remove_worker(worker.worker_id)
        # Partial output (wire rows and Bloom inserts) dies with the
        # worker; the rescanned blocks rebuild it on the survivors.
        pieces.pop(worker.worker_id, None)
        blooms.pop(worker.worker_id, None)
        merged.rows_discarded += partial.rows_scanned
        merged.blocks_reassigned += len(blocks)
        injector.record_scan_crash(
            worker.worker_id, partial.rows_scanned, len(blocks), survivors
        )
        self._requeue(worker.worker_id, blocks, tasks)

    def _requeue(self, dead_worker: int, blocks, tasks) -> None:
        """Deal a dead worker's blocks to the survivors as new tasks."""
        if not blocks:
            return
        by_id = {worker.worker_id: worker for worker in self.workers}
        for survivor_id, chunk in self.coordinator.reassign_blocks(
            dead_worker, blocks
        ):
            tasks.append((by_id[survivor_id], chunk))

    def _record_stragglers(self, injector: FaultInjector) -> None:
        """Account straggler slowdowns + speculative backups post-scan."""
        for worker in self.workers:
            factor = injector.slow_factor(worker.worker_id)
            if factor <= 1.0:
                continue
            try:
                backup = self.coordinator.speculative_worker(
                    worker.worker_id
                )
            except CatalogError:
                backup = None
            injector.record_straggler(worker.worker_id, factor, backup)

    # ------------------------------------------------------------------
    def shuffle_by_key(self, wire_tables: List[Table], key: str,
                       hot_keys=None) -> ShuffleResult:
        """All-to-all shuffle of the wire tables on the agreed hash.

        With an armed fault plan: workers crashing at shuffle time lose
        their filtered rows, which a survivor re-produces (charged as a
        recovery re-scan) before the exchange runs over the remaining
        workers; individual messages go through retry/dedup delivery.

        A non-empty ``hot_keys`` array switches to the hybrid split:
        rows of detected heavy-hitter keys are dealt round-robin across
        all (surviving) workers instead of hashing onto one receiver,
        while the cold tail keeps the agreed hash.  Delivery — retries,
        dedup, exactly-once accounting — is identical either way; only
        the outgoing matrix construction changes.
        """
        injector = self._active_injector()
        wire_tables = list(wire_tables)
        if injector is not None:
            injector.check_abort("shuffle")
            if len(wire_tables) == len(self.workers):
                wire_tables = self._shuffle_crashes(wire_tables, injector)
        if hot_keys is not None and len(hot_keys) > 0:
            hot_tuples = 0
            outgoing = []
            for sender, wire in enumerate(wire_tables):
                parts, sender_hot = JenWorker.partition_for_hybrid_shuffle(
                    wire, key, self.num_workers, hot_keys,
                    sender_offset=sender,
                )
                hot_tuples += sender_hot
                outgoing.append(parts)
            result = shuffle(outgoing, faults=injector)
            result.hot_tuples = hot_tuples
            return result
        stashed = self._consume_shuffle_stash(wire_tables, key, injector)
        if stashed is not None:
            return shuffle(stashed, faults=None)
        outgoing = [
            JenWorker.partition_for_shuffle(wire, key, self.num_workers)
            for wire in wire_tables
        ]
        return shuffle(outgoing, faults=injector)

    def _consume_shuffle_stash(self, wire_tables: List[Table], key: str,
                               injector) -> Optional[List[List[Table]]]:
        """The overlapped-shuffle matrix for exactly these wire tables.

        A fused parallel scan already partitioned every morsel by the
        agreed hash; if the caller is now shuffling those same tables
        on that same key, the partitioning work is done.  Any mismatch
        (pruned tables, different key, armed faults) simply misses and
        the sequential partitioning below runs.
        """
        stash = self._shuffle_stash
        if stash is None or injector is not None:
            return None
        wire_ids, stash_key, outgoing = stash
        if stash_key != key or wire_ids != [id(w) for w in wire_tables]:
            return None
        self._shuffle_stash = None
        return outgoing

    def _shuffle_crashes(self, wire_tables: List[Table],
                         injector: FaultInjector) -> List[Table]:
        """Kill shuffle-time crash victims and salvage their rows."""
        for victim_id in injector.shuffle_crashes(
            [worker.worker_id for worker in self.workers]
        ):
            if len(self.workers) == 1:
                raise WorkerCrashError(
                    f"worker {victim_id} crashed during shuffle and no "
                    "survivors remain",
                    worker_id=victim_id, phase="shuffle",
                    rows_lost=wire_tables[0].num_rows,
                )
            position = next(
                index for index, worker in enumerate(self.workers)
                if worker.worker_id == victim_id
            )
            victim_wire = wire_tables.pop(position)
            self._remove_worker(victim_id)
            # The survivor re-runs the victim's scan share; in the
            # deterministic data plane that re-produces exactly the
            # victim's filtered rows, so attach them to the survivor.
            survivor_id = self.workers[0].worker_id
            wire_tables[0] = Table.concat([wire_tables[0], victim_wire])
            injector.record_shuffle_crash(
                victim_id, victim_wire.num_rows, survivor_id
            )
        return wire_tables

    # ------------------------------------------------------------------
    def join_and_aggregate(
        self,
        l_parts: List[Table],
        t_parts: List[Table],
        query: HybridQuery,
        memory_budget_rows: float = 0.0,
        latemat_plan: Optional[LateMatPlan] = None,
    ) -> Tuple[Table, LocalJoinStats]:
        """Local hash joins on every worker, then the final aggregate.

        ``l_parts[i]`` is worker *i*'s build side (filtered HDFS rows it
        received), ``t_parts[i]`` its probe side (database rows that
        arrived addressed by the agreed hash).

        ``memory_budget_rows`` is the per-worker in-memory build limit at
        the data-plane scale; workers whose build side exceeds it spill
        via Grace-hash fragmenting (:mod:`repro.jen.spill`).  Zero means
        unlimited — the paper's current JEN, which "requires that all
        data fit in memory".  An armed ``spill:x<f>`` fault event
        squeezes the budget to ``f`` times the largest build side.

        ``latemat_plan`` says which sides arrived as thin
        ``(key, rowid)`` tables; the stitch (prune + payload fetch) runs
        first, so every downstream path — parallel, spilling, stealing,
        fault recovery — operates on full rows exactly as the classic
        mode and the results are row-identical by construction.
        """
        injector = self._active_injector()
        if injector is not None:
            injector.check_abort("join")
        if len(l_parts) != self.num_workers or len(t_parts) != self.num_workers:
            raise JoinError(
                "join_and_aggregate needs one part per worker on both sides"
            )
        if injector is not None:
            # The probe-side partitions arrive over the DB->JEN transfer
            # channel; lost ones retry, duplicated ones are suppressed.
            for worker in self.workers:
                injector.deliver("transfer", -1, worker.worker_id)
            pressure = injector.spill_budget_rows(
                max((part.num_rows for part in l_parts), default=0)
            )
            if pressure > 0:
                memory_budget_rows = (
                    pressure if memory_budget_rows <= 0
                    else min(memory_budget_rows, pressure)
                )
        stitch_stats: Optional[StitchStats] = None
        if latemat_plan is not None and latemat_plan.active():
            l_parts, t_parts = latemat_plan.stitch(
                l_parts, t_parts, query.hdfs_join_key, query.db_join_key
            )
            stitch_stats = latemat_plan.stats
        from repro import parallel

        if injector is not None:
            parallel.record_fallback("jen.join", "fault-plan-armed")
        elif self.build_index_provider is not None:
            # The process backend runs fault-free joins without a
            # cross-query index provider (the cache lives coordinator-
            # side and cannot be shared with pool workers).
            parallel.record_fallback("jen.join", "build-index-provider")
        elif self._wants_work_stealing():
            # Work stealing re-deals fragments across slots, which the
            # per-slot process tasks cannot express.
            parallel.record_fallback("jen.join", "skew-handling")
        elif parallel.parallel_enabled():
            from repro.parallel.join import parallel_join_and_aggregate

            try:
                result, stats = parallel_join_and_aggregate(
                    l_parts, t_parts, query, memory_budget_rows,
                    parallel.get_backend(parallel.pool_workers()),
                )
                stats.stitch = stitch_stats
                return result, stats
            except parallel.ParallelUnsupported:
                parallel.record_fallback("jen.join", "unsupported-payload")
        from repro.jen.spill import (
            encoded_fragment_bytes,
            fragment_tables,
            plan_spill,
        )
        from repro.kernels import kernels_enabled
        from repro.kernels.joinindex import JoinBuildIndex

        stats = LocalJoinStats(stitch=stitch_stats)
        # One work unit per worker to start with; the skew plane may
        # fragment straggler units and re-deal the pieces.
        work_lists: List[List[Tuple[Table, Table]]] = [
            [(l_part, t_part)]
            for l_part, t_part in zip(l_parts, t_parts)
        ]
        self._steal_stragglers(work_lists, query, stats)
        stats.per_slot_loads = [
            sum(l_unit.num_rows + t_unit.num_rows
                for l_unit, t_unit in units)
            for units in work_lists
        ]
        partials: List[Table] = []
        for slot, units in enumerate(work_lists):
            worker_partials: List[Table] = []
            for l_part, t_part in units:
                plan = plan_spill(
                    l_part.num_rows, t_part.num_rows, memory_budget_rows
                )
                stats.spilled_tuples += plan.spilled_tuples()
                stats.max_fragments = max(stats.max_fragments,
                                          plan.num_fragments)
                build_index = None
                if not plan.spilled and kernels_enabled():
                    # Sort the worker's build side once and reuse the
                    # index for the probe (and, via an installed
                    # provider, across queries whose build side is
                    # unchanged).  Spilling workers fragment the build,
                    # so whole-side indexes do not apply there; a
                    # stolen fragment is not the slot's canonical build
                    # side, so it never enters the cross-query cache.
                    build_keys = l_part.column(query.hdfs_join_key)
                    if self.build_index_provider is not None \
                            and len(units) == 1:
                        build_index = self.build_index_provider(
                            slot, build_keys
                        )
                    else:
                        build_index = JoinBuildIndex(build_keys)
                fragments = fragment_tables(
                    l_part, t_part, query.hdfs_join_key,
                    query.db_join_key, plan.num_fragments,
                )
                if plan.spilled:
                    stats.spilled_wire_bytes += \
                        encoded_fragment_bytes(fragments)
                for build_frag, probe_frag in fragments:
                    joined = local_join(probe_frag, build_frag, query,
                                        build_index=build_index)
                    stats.join_output_tuples += joined.num_rows
                    worker_partials.append(
                        local_partial_aggregate(joined, query)
                    )
                stats.build_tuples += l_part.num_rows
                stats.probe_tuples += t_part.num_rows
            partials.append(final_aggregate(worker_partials, query))
        result = final_aggregate(partials, query)
        stats.result_rows = result.num_rows
        return result, stats

    def _wants_work_stealing(self) -> bool:
        """True when the skew plane may re-deal join work here."""
        from repro import skew as skew_plane

        return skew_plane.skew_handling_enabled() and self.num_workers > 1

    def _steal_stragglers(
        self,
        work_lists: List[List[Tuple[Table, Table]]],
        query: HybridQuery,
        stats: LocalJoinStats,
    ) -> None:
        """Re-deal straggler join partitions across workers (in place).

        Partial aggregation is commutative and the fragmenting is
        key-aligned (the same machinery spill uses), so the final
        aggregate is bit-identical no matter which worker executes a
        fragment — only the load distribution changes.
        """
        from repro import skew as skew_plane

        if not skew_plane.skew_handling_enabled() or self.num_workers <= 1:
            return
        from repro.jen.scheduler import plan_work_stealing
        from repro.jen.spill import fragment_tables

        originals = [units[0] for units in work_lists]
        plan = plan_work_stealing(
            [l_part.num_rows + t_part.num_rows
             for l_part, t_part in originals],
            threshold=skew_plane.SkewPolicy().steal_threshold,
        )
        stats.pre_steal_balance = plan.pre_balance
        stats.post_steal_balance = plan.pre_balance
        if not plan.has_moves():
            return
        for units in work_lists:
            units.clear()
        stolen = 0
        for slot, (l_part, t_part) in enumerate(originals):
            pieces = fragment_tables(
                l_part, t_part, query.hdfs_join_key, query.db_join_key,
                plan.fragments[slot],
            )
            for index, piece in enumerate(pieces):
                destination = plan.assignments[(slot, index)]
                work_lists[destination].append(piece)
                if destination != slot:
                    stolen += piece[0].num_rows + piece[1].num_rows
        for slot, units in enumerate(work_lists):
            if not units:
                # Everything this slot owned was dealt away; keep a
                # degenerate empty unit so the per-worker aggregation
                # shape is unchanged.
                units.append((originals[slot][0].slice(0, 0),
                              originals[slot][1].slice(0, 0)))
        stats.stolen_tuples = stolen
        loads = [
            sum(l_unit.num_rows + t_unit.num_rows
                for l_unit, t_unit in units)
            for units in work_lists
        ]
        mean = sum(loads) / len(loads)
        stats.post_steal_balance = (
            max(loads) / mean if mean > 0 else 1.0
        )
