"""Locality-aware, balanced block assignment (paper Section 4.2).

The coordinator "carefully considers the locations of each HDFS block to
create balanced assignments and maximize the locality of data in a
best-effort manner".  The greedy policy below reproduces that: blocks
are dealt one at a time to the least-loaded worker holding a replica,
unless every replica holder is already at the balanced target, in which
case the globally least-loaded worker takes it as a remote read.

The same least-loaded-first instinct drives :func:`plan_work_stealing`,
the skew plane's join-time rebalancer: when a straggler partition
survives the hybrid shuffle (detection has thresholds; mild skew slips
under them), its work is fragmented and re-dealt across the idle
workers before the local joins run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import SimulationError
from repro.hdfs.blocks import Block


@dataclass
class BlockAssignment:
    """Result of assigning one table's blocks to workers."""

    #: worker id -> blocks it will read.
    per_worker: Dict[int, List[Block]]
    #: Blocks read from a local replica.
    local_blocks: int = 0
    #: Blocks read over the network.
    remote_blocks: int = 0

    def blocks_for(self, worker_id: int) -> List[Block]:
        """Blocks assigned to one worker."""
        return self.per_worker.get(worker_id, [])

    def locality_fraction(self) -> float:
        """Fraction of blocks served from a local replica."""
        total = self.local_blocks + self.remote_blocks
        return self.local_blocks / total if total else 1.0

    def max_rows_per_worker(self) -> int:
        """Largest per-worker row count (the scan straggler)."""
        if not self.per_worker:
            return 0
        return max(
            sum(block.num_rows for block in blocks)
            for blocks in self.per_worker.values()
        )


@dataclass
class StealPlan:
    """How straggler partitions are re-dealt across workers.

    ``fragments[slot]`` is how many pieces slot's work splits into
    (1 = untouched); ``assignments[(slot, piece)]`` names the worker
    that executes the piece.  The plan is purely an assignment — the
    engine fragments the actual tables (key-aligned, via
    :func:`repro.jen.spill.fragment_tables`) and measures the achieved
    balance afterwards.
    """

    loads: List[int]
    fragments: List[int]
    assignments: Dict[tuple, int]
    #: max/mean load before and (estimated) after stealing.
    pre_balance: float
    post_balance: float

    def has_moves(self) -> bool:
        """True if any piece runs away from its original owner."""
        return any(
            destination != slot
            for (slot, _piece), destination in self.assignments.items()
        )


def plan_work_stealing(loads: Sequence[int],
                       threshold: float = 1.25) -> StealPlan:
    """Deterministic LPT re-deal of straggler partitions.

    ``loads[i]`` is worker *i*'s pending join work (build + probe
    rows).  When the heaviest worker exceeds ``threshold`` times the
    mean, every straggler's work is fragmented into roughly mean-sized
    pieces; non-stragglers stay pinned to their owner (stealing must
    only move the surplus, never reshuffle work that is already
    placed).  The straggler pieces are then greedily dealt (largest
    first) to the least-loaded workers — classic longest-processing-
    time scheduling, with ties broken toward the piece's original owner
    and then the lowest worker id so the plan is reproducible.
    """
    loads = [int(load) for load in loads]
    n = len(loads)
    identity = StealPlan(
        loads=loads,
        fragments=[1] * n,
        assignments={(slot, 0): slot for slot in range(n)},
        pre_balance=1.0,
        post_balance=1.0,
    )
    if n <= 1:
        return identity
    total = sum(loads)
    mean = total / n
    if mean <= 0:
        return identity
    pre_balance = max(loads) / mean
    identity.pre_balance = identity.post_balance = pre_balance
    if pre_balance <= threshold:
        return identity

    fragments = [
        min(n, math.ceil(load / mean)) if load > threshold * mean else 1
        for load in loads
    ]
    assigned = [0.0] * n
    assignments: Dict[tuple, int] = {}
    for slot in range(n):
        if fragments[slot] == 1:
            assignments[(slot, 0)] = slot
            assigned[slot] += loads[slot]
    pieces = [
        (slot, piece, loads[slot] / fragments[slot])
        for slot in range(n)
        if fragments[slot] > 1
        for piece in range(fragments[slot])
    ]
    pieces.sort(key=lambda entry: (-entry[2], entry[0], entry[1]))
    for slot, piece, estimate in pieces:
        destination = min(
            range(n),
            key=lambda worker: (
                assigned[worker], 0 if worker == slot else 1, worker
            ),
        )
        assignments[(slot, piece)] = destination
        assigned[destination] += estimate
    return StealPlan(
        loads=loads,
        fragments=fragments,
        assignments=assignments,
        pre_balance=pre_balance,
        post_balance=max(assigned) / mean,
    )


def assign_blocks(blocks: Sequence[Block], workers,
                  locality: bool = True) -> BlockAssignment:
    """Assign blocks to workers, balancing load and honouring locality.

    ``workers`` is either a worker count (ids ``0..n-1``) or an explicit
    list of live worker ids — the latter is what the coordinator passes
    after a worker failure, so blocks whose replicas live on a dead node
    fall back to remote reads on the survivors.

    ``locality=False`` ignores replica placement entirely (blocks are
    dealt round-robin) — the locality ablation benchmark uses this to
    quantify what Section 4.2's policy buys.
    """
    if isinstance(workers, int):
        worker_ids = list(range(workers))
    else:
        worker_ids = list(workers)
    if not worker_ids:
        raise SimulationError("need at least one worker")
    live = set(worker_ids)
    assignment = BlockAssignment(
        per_worker={worker: [] for worker in worker_ids}
    )
    if not blocks:
        return assignment

    target = math.ceil(len(blocks) / len(worker_ids))
    load = {worker: 0 for worker in worker_ids}

    for position, block in enumerate(blocks):
        if not locality:
            # Round-robin with an offset so the assignment does not
            # accidentally line up with the NameNode's own round-robin
            # first-replica placement.
            index = (position + len(worker_ids) // 2 + 1) % len(worker_ids)
            worker = worker_ids[index]
            assignment.per_worker[worker].append(block)
            load[worker] += 1
            if worker in block.replicas:
                assignment.local_blocks += 1
            else:
                assignment.remote_blocks += 1
            continue
        candidates = [
            node for node in block.replicas
            if node in live and load[node] < target
        ]
        if candidates:
            worker = min(candidates, key=lambda node: (load[node], node))
            assignment.local_blocks += 1
        else:
            worker = min(load, key=lambda node: (load[node], node))
            if worker in block.replicas:
                assignment.local_blocks += 1
            else:
                assignment.remote_blocks += 1
        assignment.per_worker[worker].append(block)
        load[worker] += 1
    return assignment
