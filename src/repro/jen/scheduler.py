"""Locality-aware, balanced block assignment (paper Section 4.2).

The coordinator "carefully considers the locations of each HDFS block to
create balanced assignments and maximize the locality of data in a
best-effort manner".  The greedy policy below reproduces that: blocks
are dealt one at a time to the least-loaded worker holding a replica,
unless every replica holder is already at the balanced target, in which
case the globally least-loaded worker takes it as a remote read.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import SimulationError
from repro.hdfs.blocks import Block


@dataclass
class BlockAssignment:
    """Result of assigning one table's blocks to workers."""

    #: worker id -> blocks it will read.
    per_worker: Dict[int, List[Block]]
    #: Blocks read from a local replica.
    local_blocks: int = 0
    #: Blocks read over the network.
    remote_blocks: int = 0

    def blocks_for(self, worker_id: int) -> List[Block]:
        """Blocks assigned to one worker."""
        return self.per_worker.get(worker_id, [])

    def locality_fraction(self) -> float:
        """Fraction of blocks served from a local replica."""
        total = self.local_blocks + self.remote_blocks
        return self.local_blocks / total if total else 1.0

    def max_rows_per_worker(self) -> int:
        """Largest per-worker row count (the scan straggler)."""
        if not self.per_worker:
            return 0
        return max(
            sum(block.num_rows for block in blocks)
            for blocks in self.per_worker.values()
        )


def assign_blocks(blocks: Sequence[Block], workers,
                  locality: bool = True) -> BlockAssignment:
    """Assign blocks to workers, balancing load and honouring locality.

    ``workers`` is either a worker count (ids ``0..n-1``) or an explicit
    list of live worker ids — the latter is what the coordinator passes
    after a worker failure, so blocks whose replicas live on a dead node
    fall back to remote reads on the survivors.

    ``locality=False`` ignores replica placement entirely (blocks are
    dealt round-robin) — the locality ablation benchmark uses this to
    quantify what Section 4.2's policy buys.
    """
    if isinstance(workers, int):
        worker_ids = list(range(workers))
    else:
        worker_ids = list(workers)
    if not worker_ids:
        raise SimulationError("need at least one worker")
    live = set(worker_ids)
    assignment = BlockAssignment(
        per_worker={worker: [] for worker in worker_ids}
    )
    if not blocks:
        return assignment

    target = math.ceil(len(blocks) / len(worker_ids))
    load = {worker: 0 for worker in worker_ids}

    for position, block in enumerate(blocks):
        if not locality:
            # Round-robin with an offset so the assignment does not
            # accidentally line up with the NameNode's own round-robin
            # first-replica placement.
            index = (position + len(worker_ids) // 2 + 1) % len(worker_ids)
            worker = worker_ids[index]
            assignment.per_worker[worker].append(block)
            load[worker] += 1
            if worker in block.replicas:
                assignment.local_blocks += 1
            else:
                assignment.remote_blocks += 1
            continue
        candidates = [
            node for node in block.replicas
            if node in live and load[node] < target
        ]
        if candidates:
            worker = min(candidates, key=lambda node: (load[node], node))
            assignment.local_blocks += 1
        else:
            worker = min(load, key=lambda node: (load[node], node))
            if worker in block.replicas:
                assignment.local_blocks += 1
            else:
                assignment.remote_blocks += 1
        assignment.per_worker[worker].append(block)
        load[worker] += 1
    return assignment
