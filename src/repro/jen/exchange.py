"""Worker-to-worker exchange: shuffles, Bloom merges, final aggregation.

Three kinds of transfers happen among JEN workers (paper Section 4.3):
the all-to-all shuffle of filtered HDFS rows for repartition-based
joins, the aggregation of local Bloom filters at a designated worker,
and the merge of partial aggregates at a designated worker.  The
functions here perform the data movement and report its volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.bloom import BloomFilter
from repro.errors import JoinError
from repro.relational.table import Table
from repro.query.plan import merge_partials, partial_tables_nonempty
from repro.query.query import HybridQuery
from repro.adaptive import hooks as adaptive_hooks
from repro.testkit import invariants


@dataclass
class ShuffleResult:
    """Regrouped tables plus movement accounting."""

    #: Destination worker -> concatenated rows it received.
    per_destination: List[Table]
    #: All tuples that entered the shuffle (the paper's Table 1 counts
    #: every shuffled tuple, including those staying on their sender).
    tuples_shuffled: int
    #: Tuples that actually crossed the network (sender != receiver).
    tuples_remote: int
    #: Lost messages that had to be re-sent (fault injection).
    retries: int = 0
    #: Re-delivered partitions the receivers suppressed (lost ACKs).
    duplicates_suppressed: int = 0
    #: Rows routed off the agreed hash by a hybrid (skew-resistant)
    #: shuffle — hot-key build rows spread round-robin across workers.
    hot_tuples: int = 0
    #: Actual bytes of the remote partitions on the compact wire codec
    #: (varint/delta/dictionary-id framing).  Only measured when late
    #: materialization is enabled; 0 otherwise.
    encoded_wire_bytes: int = 0

    def balance_factor(self) -> float:
        """Hottest receiver's row count relative to the mean (>= 1.0).

        This is the measured data-plane analogue of the analytic
        ``HybridConfig.shuffle_skew`` multiplier: the shuffle finishes
        when the most-loaded receiver has everything addressed to it.
        """
        sizes = [table.num_rows for table in self.per_destination]
        total = sum(sizes)
        if not sizes or total == 0:
            return 1.0
        return max(1.0, max(sizes) * len(sizes) / total)


def shuffle(outgoing: Sequence[Sequence[Table]],
            faults=None) -> ShuffleResult:
    """Execute an all-to-all shuffle with exactly-once delivery.

    ``outgoing[sender][destination]`` holds the rows sender routed to
    destination via the agreed hash.  Every sender must address the same
    number of destinations.

    ``faults`` is an optional :class:`~repro.faults.FaultInjector`;
    when armed, every remote partition goes through its retry machinery
    (drops and truncations are re-sent after a timeout) and delivery is
    idempotent: each receiver accepts one copy per sender, so a
    partition re-delivered because its acknowledgement was lost does
    *not* duplicate rows.
    """
    if not outgoing:
        raise JoinError("shuffle needs at least one sender")
    num_destinations = len(outgoing[0])
    for sender_parts in outgoing:
        if len(sender_parts) != num_destinations:
            raise JoinError("ragged shuffle matrix")

    per_destination: List[Table] = []
    tuples_shuffled = 0
    tuples_remote = 0
    retries = 0
    duplicates_suppressed = 0
    encoded_wire_bytes = 0
    # With late materialization on, remote partitions really travel in
    # the compact wire codec; measure what they cost encoded.
    from repro.latemat import late_materialization_enabled
    measure_wire = late_materialization_enabled()
    if measure_wire:
        from repro.kernels.wirecodec import encoded_table_bytes
    delivery_counts = (
        np.zeros((len(outgoing), num_destinations), dtype=np.int64)
        if invariants.checking_enabled() else None
    )
    for destination in range(num_destinations):
        accepted: List[Table] = []
        seen_senders = set()
        for sender, sender_parts in enumerate(outgoing):
            part = sender_parts[destination]
            copies = 1
            if faults is not None and sender != destination:
                # Local parts never touch the network; remote ones can
                # be dropped (re-sent) or duplicated (lost ACK).
                duplicated, failures = faults.deliver(
                    "shuffle", sender, destination
                )
                retries += failures
                if duplicated:
                    copies = 2
            for _ in range(copies):
                if sender in seen_senders:
                    duplicates_suppressed += 1
                    continue
                seen_senders.add(sender)
                accepted.append(part)
                if delivery_counts is not None:
                    delivery_counts[sender, destination] += 1
                tuples_shuffled += part.num_rows
                if sender != destination:
                    tuples_remote += part.num_rows
                    if measure_wire and part.num_rows:
                        encoded_wire_bytes += encoded_table_bytes(part)
        # Table.concat is lazy about degenerate inputs: empty partitions
        # (the common case with many workers and selective filters) are
        # dropped before any column is copied, and a single surviving
        # partition is returned as-is — zero-copy end to end when only
        # one sender routed rows here.
        per_destination.append(Table.concat(accepted))
    if delivery_counts is not None:
        invariants.check_shuffle_delivery(
            outgoing, per_destination, delivery_counts
        )
    adaptive_hooks.record_shuffle_partitions(
        [table.num_rows for table in per_destination]
    )
    return ShuffleResult(
        per_destination=per_destination,
        tuples_shuffled=tuples_shuffled,
        tuples_remote=tuples_remote,
        retries=retries,
        duplicates_suppressed=duplicates_suppressed,
        encoded_wire_bytes=encoded_wire_bytes,
    )


def combine_blooms(local_filters: Sequence[BloomFilter]) -> BloomFilter:
    """Merge per-worker Bloom filters at the designated worker."""
    return BloomFilter.combine(list(local_filters))


def final_aggregate(partials: Sequence[Table], query: HybridQuery) -> Table:
    """Merge per-worker partial aggregates at the designated worker."""
    return merge_partials(partial_tables_nonempty(list(partials)), query)
