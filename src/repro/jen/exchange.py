"""Worker-to-worker exchange: shuffles, Bloom merges, final aggregation.

Three kinds of transfers happen among JEN workers (paper Section 4.3):
the all-to-all shuffle of filtered HDFS rows for repartition-based
joins, the aggregation of local Bloom filters at a designated worker,
and the merge of partial aggregates at a designated worker.  The
functions here perform the data movement and report its volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.bloom import BloomFilter
from repro.errors import JoinError
from repro.relational.table import Table
from repro.query.plan import merge_partials, partial_tables_nonempty
from repro.query.query import HybridQuery


@dataclass
class ShuffleResult:
    """Regrouped tables plus movement accounting."""

    #: Destination worker -> concatenated rows it received.
    per_destination: List[Table]
    #: All tuples that entered the shuffle (the paper's Table 1 counts
    #: every shuffled tuple, including those staying on their sender).
    tuples_shuffled: int
    #: Tuples that actually crossed the network (sender != receiver).
    tuples_remote: int


def shuffle(outgoing: Sequence[Sequence[Table]]) -> ShuffleResult:
    """Execute an all-to-all shuffle.

    ``outgoing[sender][destination]`` holds the rows sender routed to
    destination via the agreed hash.  Every sender must address the same
    number of destinations.
    """
    if not outgoing:
        raise JoinError("shuffle needs at least one sender")
    num_destinations = len(outgoing[0])
    for sender_parts in outgoing:
        if len(sender_parts) != num_destinations:
            raise JoinError("ragged shuffle matrix")

    per_destination: List[Table] = []
    tuples_shuffled = 0
    tuples_remote = 0
    for destination in range(num_destinations):
        incoming = [sender_parts[destination] for sender_parts in outgoing]
        for sender, part in enumerate(incoming):
            tuples_shuffled += part.num_rows
            if sender != destination:
                tuples_remote += part.num_rows
        per_destination.append(Table.concat(list(incoming)))
    return ShuffleResult(
        per_destination=per_destination,
        tuples_shuffled=tuples_shuffled,
        tuples_remote=tuples_remote,
    )


def combine_blooms(local_filters: Sequence[BloomFilter]) -> BloomFilter:
    """Merge per-worker Bloom filters at the designated worker."""
    return BloomFilter.combine(list(local_filters))


def final_aggregate(partials: Sequence[Table], query: HybridQuery) -> Table:
    """Merge per-worker partial aggregates at the designated worker."""
    return merge_partials(partial_tables_nonempty(list(partials)), query)
