"""Micro-model of one JEN worker's thread pipeline (paper Fig. 7).

Section 4.4 describes how a worker overlaps everything: one read thread
per disk, a single process thread (parse, predicates, Bloom filter,
projection, routing), send threads draining the send buffers, and
receive threads building the hash table as rows arrive.  The paper
asserts that although there is only one process thread, "it is never
the bottleneck".

This module reconstructs that pipeline as a streaming stage graph and
replays it on the discrete-event kernel, reporting per-stage busy time
and the bottleneck stage, so the claim can be checked quantitatively for
any format/selectivity combination (see the ``ablation_process_thread``
experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import HybridConfig
from repro.errors import SimulationError
from repro.sim.replay import replay_trace
from repro.sim.trace import Trace


@dataclass(frozen=True)
class PipelineInputs:
    """Per-worker volumes of one scan+shuffle stage (paper scale)."""

    #: Rows this worker scans.
    rows_scanned: float
    #: Stored bytes this worker reads (format- and projection-aware).
    stored_bytes: float
    #: Rows surviving predicates/Bloom filter (entering send buffers).
    rows_out: float
    #: Wire bytes per outgoing row.
    wire_row_bytes: float
    #: Rows arriving from peers (for the hash-table build).
    rows_in: float
    format_name: str = "parquet"


@dataclass
class PipelineReport:
    """Outcome of the worker-pipeline micro-simulation."""

    stage_seconds: Dict[str, float]
    makespan: float

    def bottleneck(self) -> str:
        """The stage with the largest busy time."""
        return max(self.stage_seconds, key=self.stage_seconds.get)

    def process_thread_is_bottleneck(self) -> bool:
        """The paper claims this is never true in practice."""
        return self.bottleneck() == "process"

    def describe(self) -> str:
        """Multi-line summary."""
        lines = [f"worker pipeline: {self.makespan:.1f}s makespan, "
                 f"bottleneck={self.bottleneck()}"]
        for stage, seconds in self.stage_seconds.items():
            lines.append(f"  {stage:<8s} {seconds:8.2f}s busy")
        return "\n".join(lines)


def simulate_worker_pipeline(inputs: PipelineInputs,
                             config: HybridConfig) -> PipelineReport:
    """Replay one worker's read/process/send/receive/build pipeline.

    Stage durations are the *busy* times each thread pool needs for its
    volume; the replay wires them with the streaming edges of Figure 7,
    so the makespan reflects the overlap the paper engineered.
    """
    if inputs.rows_scanned < 0 or inputs.stored_bytes < 0:
        raise SimulationError("negative pipeline volumes")
    cost = config.cost
    cluster = config.cluster

    rates = {
        "text": cost.text_scan_bytes_per_s,
        "parquet": cost.parquet_scan_bytes_per_s,
        "orc": cost.orc_scan_bytes_per_s,
    }
    scan_rate = rates.get(inputs.format_name, cost.text_scan_bytes_per_s)
    read_seconds = inputs.stored_bytes / scan_rate
    process_seconds = inputs.rows_scanned / cost.jen_process_tuples_per_s
    outbound = inputs.rows_out * inputs.wire_row_bytes
    inbound = inputs.rows_in * inputs.wire_row_bytes
    send_seconds = outbound / cost.shuffle_bytes_per_s
    receive_seconds = inbound / min(cost.shuffle_bytes_per_s,
                                    cluster.hdfs_nic_bytes_per_s)
    build_seconds = inputs.rows_in / cost.hash_build_tuples_per_s

    trace = Trace(label="worker-pipeline")
    trace.add("read", "disk", read_seconds,
              description=f"{cluster.hdfs_disks_per_node} read threads")
    trace.add("process", "cpu", process_seconds, streams_from=["read"],
              description="single process thread: parse, predicates, "
                          "BF, projection, routing")
    trace.add("send", "network", send_seconds, streams_from=["process"],
              description="send-thread pool draining buffers")
    trace.add("receive", "network", receive_seconds,
              streams_from=["process"],
              description="receive threads (peers' sends mirror ours)")
    trace.add("build", "cpu", build_seconds, streams_from=["receive"],
              description="hash-table inserts as rows arrive")
    timing = replay_trace(trace)
    return PipelineReport(
        stage_seconds={
            "read": read_seconds,
            "process": process_seconds,
            "send": send_seconds,
            "receive": receive_seconds,
            "build": build_seconds,
        },
        makespan=timing.total_seconds,
    )
