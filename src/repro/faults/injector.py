"""The fault injector: fires a :class:`FaultPlan` during execution.

One :class:`FaultInjector` is armed on a :class:`~repro.jen.engine.Jen`
(via ``arm_faults``) and consulted from the engine's hook points:

* the distributed scan asks :meth:`scan_crash_block` whether a worker
  dies mid-scan and at which block;
* the shuffle asks :meth:`shuffle_crashes` for workers dying after
  their scan but before their rows are safely exchanged;
* every shuffle/transfer message goes through :meth:`deliver`, which
  rolls the plan's drop/trunc/dup probabilities with a per-message
  seeded RNG and drives the :class:`~repro.net.transfer.RetryPolicy`;
* phase entries call :meth:`check_abort` so ``abort:`` events can kill
  the whole query (the service plane re-admits it once).

Every recovery the engine performs is logged as a
:class:`RecoveryAction`; :meth:`charge_trace` later materialises the
actions as ``recovery`` phases on the algorithm's trace, so the Gantt
timeline shows the detection timeouts, re-scans, backoffs and
speculative backups — and the simulated makespan pays for them.

Determinism: message outcomes are drawn from
``random.Random(f"{seed}:{epoch}:{channel}:{sender}:{dest}:{attempt}")``
so they depend only on the plan seed and the message identity, never on
call order.  Crash and abort events fire exactly once (aborts: once per
configured count); the fired state survives a service-plane retry, which
is what lets a re-admitted query succeed where the first attempt died.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FaultSpecError, QueryAbortError
from repro.faults.plan import FaultPlan
from repro.net.transfer import RetryPolicy, deliver_with_retry


class CrashSignal(Exception):
    """Internal control-flow signal: a worker just died mid-task.

    Not part of the :class:`~repro.errors.ReproError` family on purpose
    — it must never escape the engine, which converts it into recovery
    (or :class:`~repro.errors.WorkerCrashError` when unrecoverable).
    """

    def __init__(self, worker_id: int, stats):
        super().__init__(f"worker {worker_id} crashed")
        self.worker_id = worker_id
        self.stats = stats


class ScanFaultHook:
    """Per-task adapter handed to ``JenWorker.scan_filter_project``.

    Raises :class:`CrashSignal` when the scan reaches the injected
    crash block, carrying the partial stats (the work about to be
    lost).
    """

    def __init__(self, crash_at: Optional[int]):
        self.crash_at = crash_at

    def before_block(self, worker_id: int, index: int, stats) -> None:
        """Called by the worker before reading each block."""
        if self.crash_at is not None and index == self.crash_at:
            raise CrashSignal(worker_id, stats)


@dataclass
class RecoveryAction:
    """One recovery the engine performed, to be charged on the trace.

    ``seconds`` is an absolute cost (detection timeouts, backoffs);
    ``fraction`` is additionally multiplied by the duration of the
    anchor phase — the last trace phase whose kind equals
    ``anchor_kind`` — because re-scans and speculative backups cost a
    share of the work the phase itself priced.
    """

    kind: str
    description: str
    anchor_kind: str
    seconds: float = 0.0
    fraction: float = 0.0
    tuples: float = 0.0


class FaultInjector:
    """Arms a :class:`FaultPlan` and records the recovery it forces."""

    def __init__(self, plan: FaultPlan,
                 retry_policy: Optional[RetryPolicy] = None,
                 detect_fraction: float = 0.25):
        self.plan = plan
        self.retry_policy = retry_policy or RetryPolicy()
        if not 0.0 < detect_fraction <= 1.0:
            raise FaultSpecError(
                f"detect fraction must be in (0, 1], got {detect_fraction}"
            )
        self.detect_fraction = detect_fraction
        self.armed = True
        #: Query attempt number; bumped by the service plane on retry so
        #: per-message RNG draws differ between attempts.
        self.epoch = 0
        self.actions: List[RecoveryAction] = []
        #: channel -> destination -> accumulated retry wait.  Retries on
        #: different links overlap; a receiver only waits for its own
        #: slowest chain, so the per-channel charge is the max.
        self._retry_waits: Dict[str, Dict[int, float]] = {}
        self._retry_messages: Dict[str, int] = {}
        self.fired: List[str] = []
        self._crashed: set = set()
        self._abort_remaining: Dict[str, int] = dict(plan.abort_counts())
        # Counters (exactly-once accounting for the chaos battery).
        self.crashes = 0
        self.rows_discarded = 0
        self.blocks_reassigned = 0
        self.speculations = 0
        self.stragglers = 0
        self.retries = 0
        self.duplicates_suppressed = 0
        self.aborts = 0

    # ------------------------------------------------------------------
    # Crash events
    # ------------------------------------------------------------------
    def scan_crash_block(self, worker_id: int,
                         num_blocks: int) -> Optional[int]:
        """Block index at which ``worker_id`` dies scanning, or None.

        Fires at the midpoint of the worker's block list — far enough in
        that partial work exists to discard, early enough that the
        un-scanned tail dominates.  Each worker crashes at most once.
        """
        for event in self.plan.crash_events():
            if (event.phase == "scan" and event.worker == worker_id
                    and worker_id not in self._crashed):
                self._crashed.add(worker_id)
                crash_at = num_blocks // 2
                self.fired.append(
                    f"crash: worker {worker_id} died during scan "
                    f"(block {crash_at}/{num_blocks})"
                )
                return crash_at
        return None

    def shuffle_crashes(self, live_ids: Sequence[int]) -> List[int]:
        """Workers among ``live_ids`` that die entering the shuffle."""
        victims = []
        for event in self.plan.crash_events():
            if (event.phase == "shuffle" and event.worker in live_ids
                    and event.worker not in self._crashed):
                self._crashed.add(event.worker)
                self.fired.append(
                    f"crash: worker {event.worker} died during shuffle"
                )
                victims.append(event.worker)
        return victims

    def record_scan_crash(self, worker_id: int, rows_lost: int,
                          blocks: int, survivors: int) -> None:
        """Account a recovered mid-scan crash."""
        self.crashes += 1
        self.rows_discarded += rows_lost
        self.blocks_reassigned += blocks
        self.actions.append(RecoveryAction(
            kind="rescan",
            description=(
                f"re-scan {blocks} blocks of crashed worker {worker_id} "
                f"on {survivors} survivors ({rows_lost} partial rows "
                "discarded)"
            ),
            anchor_kind="hdfs_scan",
            seconds=self.retry_policy.timeout_seconds,
            fraction=1.0 / max(1, survivors),
            tuples=rows_lost,
        ))

    def record_shuffle_crash(self, worker_id: int, rows_lost: int,
                             survivor: int) -> None:
        """Account a crash after the scan but mid-exchange.

        The victim's filtered rows existed only in its memory; the
        survivor must re-produce the victim's whole scan share, so the
        recovery costs a full per-worker scan on top of the detection
        timeout.
        """
        self.crashes += 1
        self.rows_discarded += rows_lost
        self.actions.append(RecoveryAction(
            kind="rescan",
            description=(
                f"worker {survivor} re-produces the {rows_lost} filtered "
                f"rows lost with worker {worker_id} (died in shuffle)"
            ),
            anchor_kind="hdfs_scan",
            seconds=self.retry_policy.timeout_seconds,
            fraction=1.0,
            tuples=rows_lost,
        ))

    # ------------------------------------------------------------------
    # Stragglers
    # ------------------------------------------------------------------
    def slow_factor(self, worker_id: int) -> float:
        """The straggler slowdown of ``worker_id`` (1.0 = healthy)."""
        factor = 1.0
        for event in self.plan.slow_events():
            if event.worker == worker_id:
                factor = max(factor, event.factor)
        return factor

    def record_straggler(self, worker_id: int, factor: float,
                         backup: Optional[int]) -> None:
        """Account a straggler; ``backup`` is the speculative worker.

        Without speculation the phase would stretch by ``factor``; with
        a backup launched once the worker falls ``detect_fraction``
        behind, the stretch is capped at ``detect_fraction`` of the
        phase.  The cheaper of the two is charged — speculation only
        helps once the straggler is slower than the backup path.
        """
        extra = min(factor - 1.0, self.detect_fraction)
        if extra <= 0:
            return
        speculated = backup is not None and factor - 1.0 > self.detect_fraction
        if speculated:
            self.speculations += 1
            description = (
                f"speculative re-execution of straggler worker "
                f"{worker_id} (x{factor:g}) on backup worker {backup}"
            )
        else:
            self.stragglers += 1
            description = (
                f"straggler worker {worker_id} (x{factor:g}) finished "
                "before speculation paid off"
            )
        self.fired.append(f"slow: worker {worker_id} x{factor:g}"
                          + (f", backup {backup}" if speculated else ""))
        self.actions.append(RecoveryAction(
            kind="speculate" if speculated else "straggler",
            description=description,
            anchor_kind="hdfs_scan",
            fraction=extra,
        ))

    # ------------------------------------------------------------------
    # Message faults
    # ------------------------------------------------------------------
    def transfer_outcome(self, channel: str, sender: int,
                         destination: int, attempt: int) -> str:
        """Outcome of one message attempt: ok / drop / trunc / dup.

        Drawn from a RNG seeded by the message identity, so outcomes are
        independent of call order and reproducible across runs.
        """
        events = self.plan.message_events(channel)
        if not events:
            return "ok"
        rng = random.Random(
            f"{self.plan.seed}:{self.epoch}:{channel}"
            f":{sender}:{destination}:{attempt}"
        )
        for event in events:
            if rng.random() < event.prob:
                return event.kind
        return "ok"

    def deliver(self, channel: str, sender: int,
                destination: int) -> Tuple[bool, int]:
        """Deliver one message through the retry machinery.

        Returns ``(duplicated, failures)``: whether the payload arrived
        twice (lost ACK — the receiver must suppress the copy) and how
        many attempts were lost before success.  Raises
        :class:`~repro.errors.TransferFaultError` once the retry budget
        is exhausted; the service plane handles that.
        """
        if not self.armed:
            return False, 0
        outcome, attempts = deliver_with_retry(
            None,
            lambda _payload, attempt: self.transfer_outcome(
                channel, sender, destination, attempt
            ),
            self.retry_policy,
            channel=channel, sender=sender, destination=destination,
        )
        failures = attempts - 1
        if failures:
            self.retries += failures
            self.fired.append(
                f"{channel}: message {sender}->{destination} lost "
                f"{failures}x, delivered on attempt {attempts}"
            )
            waits = self._retry_waits.setdefault(channel, {})
            waits[destination] = (
                waits.get(destination, 0.0)
                + self.retry_policy.retry_overhead_seconds(failures)
            )
            self._retry_messages[channel] = (
                self._retry_messages.get(channel, 0) + 1
            )
        if outcome == "dup":
            self.duplicates_suppressed += 1
            self.fired.append(
                f"{channel}: message {sender}->{destination} delivered "
                "twice (lost ACK); duplicate suppressed"
            )
        return outcome == "dup", failures

    # ------------------------------------------------------------------
    # Query aborts
    # ------------------------------------------------------------------
    def check_abort(self, phase: str) -> None:
        """Raise the injected coordinator abort if one is pending."""
        remaining = self._abort_remaining.get(phase, 0)
        if remaining > 0:
            self._abort_remaining[phase] = remaining - 1
            self.aborts += 1
            self.fired.append(f"abort: query killed at {phase} "
                              f"(attempt {self.epoch + 1})")
            raise QueryAbortError(
                f"injected abort at {phase} start "
                f"({remaining - 1} aborts remaining)",
                phase=phase,
            )

    def bump_epoch(self) -> None:
        """Advance the query-attempt counter (service-plane retry)."""
        self.epoch += 1

    # ------------------------------------------------------------------
    # Spill pressure
    # ------------------------------------------------------------------
    def spill_budget_rows(self, max_build_rows: int) -> float:
        """Injected per-worker memory budget (0 = no pressure)."""
        factor = self.plan.spill_factor()
        if factor <= 0 or max_build_rows <= 0:
            return 0.0
        budget = max(1.0, factor * max_build_rows)
        if not any(entry.startswith("spill:") for entry in self.fired):
            self.fired.append(
                f"spill: memory budget squeezed to {budget:.0f} rows "
                f"(x{factor:g} of the largest build side)"
            )
        return budget

    # ------------------------------------------------------------------
    # Charging the time plane
    # ------------------------------------------------------------------
    def charge_trace(self, trace) -> int:
        """Materialise pending recovery actions as trace phases.

        Each action becomes a ``recovery``-kind phase spliced in right
        after the last phase of its ``anchor_kind`` (falling back to the
        last phase of the trace), with duration ``seconds + fraction *
        anchor.seconds``.  Splicing rewires the anchor's dependents to
        wait on the recovery, so the replayed makespan pays for it —
        downstream phases genuinely could not proceed until the re-scan
        or retry finished.  Drains the action list; returns how many
        phases were added.
        """
        self._drain_retry_actions()
        actions, self.actions = self.actions, []
        names = trace.names()
        if not names or not actions:
            return 0
        last_by_kind: Dict[str, str] = {}
        for phase in trace:
            last_by_kind[phase.kind] = phase.name
        added = 0
        for index, action in enumerate(actions):
            anchor_name = last_by_kind.get(action.anchor_kind, names[-1])
            anchor = trace.phase(anchor_name)
            seconds = action.seconds + action.fraction * anchor.seconds
            if seconds <= 0:
                continue
            trace.splice_after(
                anchor_name,
                f"recovery_{index}_{action.kind}", "recovery", seconds,
                description=action.description,
                tuples=action.tuples,
            )
            added += 1
        return added

    def _drain_retry_actions(self) -> None:
        """Fold accumulated per-link retry waits into one action each.

        A receiver waits for its own slowest chain of re-sends while all
        other links keep flowing, so the phase-level charge is the
        maximum per-destination wait, not the sum over messages.
        """
        waits, self._retry_waits = self._retry_waits, {}
        messages, self._retry_messages = self._retry_messages, {}
        for channel, per_destination in waits.items():
            slowest = max(per_destination.values())
            self.actions.append(RecoveryAction(
                kind="retry",
                description=(
                    f"{messages.get(channel, 0)} lost {channel} messages "
                    f"re-sent after timeout + backoff (slowest receiver "
                    f"waited {slowest:.1f}s)"
                ),
                anchor_kind=("shuffle" if channel == "shuffle"
                             else "transfer"),
                seconds=slowest,
            ))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """The accounting counters as a plain dict."""
        return {
            "crashes": self.crashes,
            "rows_discarded": self.rows_discarded,
            "blocks_reassigned": self.blocks_reassigned,
            "speculations": self.speculations,
            "stragglers": self.stragglers,
            "retries": self.retries,
            "duplicates_suppressed": self.duplicates_suppressed,
            "aborts": self.aborts,
        }

    def report(self) -> str:
        """Human-readable summary of everything that fired."""
        lines = [f"fault plan: {self.plan.spec()} (seed {self.plan.seed})"]
        if self.fired:
            lines += [f"  {entry}" for entry in self.fired]
        else:
            lines.append("  no faults fired")
        active = {name: value for name, value in self.counters().items()
                  if value}
        if active:
            lines.append("  " + ", ".join(
                f"{name}={value}" for name, value in sorted(active.items())
            ))
        return "\n".join(lines)
