"""Deterministic fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is parsed from a compact spec string and fully
determines — together with its seed — every fault the injector will
fire during a query.  The grammar is a comma-separated list of events::

    crash:w7@scan        worker 7 dies partway through its scan tasks
    crash:w2@shuffle     worker 2 dies during the shuffle (its filtered
                         rows are lost and must be re-produced)
    slow:w3x5            worker 3 runs 5x slower (straggler); the
                         coordinator speculates a backup copy when the
                         factor reaches the speculation threshold
    drop:shuffle:0.01    each shuffle message is lost with p = 0.01
    trunc:shuffle:0.01   ... truncated in flight with p = 0.01
    dup:shuffle:0.02     ... delivered twice (lost ACK) with p = 0.02
    drop:transfer:0.05   same, for DB<->JEN transfer messages
    spill:x0.5           squeeze the per-worker join memory budget to
                         half the largest build side (forces Grace-hash
                         fragmenting)
    abort:scan:1         kill the whole query at scan start, once (the
                         service plane re-admits it)

Crash and abort events fire exactly once; message-level events are
evaluated per message with a seeded RNG, so the same plan and seed
always produce the same faults — chaos runs are reproducible bit for
bit.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import FaultSpecError

#: Phases a crash or abort event can target.
CRASH_PHASES = ("scan", "shuffle")
ABORT_PHASES = ("scan", "shuffle", "join")
#: Logical message channels faults can degrade.
CHANNELS = ("shuffle", "transfer")
#: Message-event kinds.
MESSAGE_KINDS = ("drop", "trunc", "dup")

_CRASH_RE = re.compile(r"^w(\d+)@([a-z]+)$")
_SLOW_RE = re.compile(r"^w(\d+)x(\d+(?:\.\d+)?)$")
_SPILL_RE = re.compile(r"^x(\d+(?:\.\d+)?)$")


@dataclass(frozen=True)
class CrashEvent:
    """One worker dies mid-query, in the given phase.  Fires once."""

    worker: int
    phase: str

    def spec(self) -> str:
        """Spec-string rendering."""
        return f"crash:w{self.worker}@{self.phase}"


@dataclass(frozen=True)
class SlowEvent:
    """One worker is a straggler, slowed by ``factor``."""

    worker: int
    factor: float

    def spec(self) -> str:
        """Spec-string rendering."""
        return f"slow:w{self.worker}x{self.factor:g}"


@dataclass(frozen=True)
class MessageEvent:
    """Per-message degradation of one channel with probability ``prob``."""

    kind: str        # "drop", "trunc" or "dup"
    channel: str     # "shuffle" or "transfer"
    prob: float

    def spec(self) -> str:
        """Spec-string rendering."""
        return f"{self.kind}:{self.channel}:{self.prob:g}"


@dataclass(frozen=True)
class SpillEvent:
    """Memory pressure: budget = factor * largest build side."""

    factor: float

    def spec(self) -> str:
        """Spec-string rendering."""
        return f"spill:x{self.factor:g}"


@dataclass(frozen=True)
class AbortEvent:
    """Kill the whole query at phase entry, ``count`` times."""

    phase: str
    count: int

    def spec(self) -> str:
        """Spec-string rendering."""
        return f"abort:{self.phase}:{self.count}"


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, seeded, reproducible schedule of faults for one query."""

    events: Tuple[object, ...] = ()
    seed: int = 11

    @classmethod
    def from_spec(cls, spec: str, seed: int = 11) -> "FaultPlan":
        """Parse a comma-separated spec string (see module docstring)."""
        events = []
        crashes: Dict[int, str] = {}
        for raw in spec.split(","):
            part = raw.strip()
            if not part:
                continue
            events.append(_parse_event(part, crashes))
        if not events:
            raise FaultSpecError(f"empty fault spec {spec!r}")
        return cls(events=tuple(events), seed=seed)

    def spec(self) -> str:
        """Canonical spec string (round-trips through :meth:`from_spec`)."""
        return ",".join(event.spec() for event in self.events)

    def __str__(self) -> str:
        return f"FaultPlan({self.spec()!r}, seed={self.seed})"

    # -- typed views ----------------------------------------------------
    def crash_events(self) -> Tuple[CrashEvent, ...]:
        """The worker-crash events, in spec order."""
        return tuple(e for e in self.events if isinstance(e, CrashEvent))

    def slow_events(self) -> Tuple[SlowEvent, ...]:
        """The straggler events, in spec order."""
        return tuple(e for e in self.events if isinstance(e, SlowEvent))

    def message_events(self, channel: str) -> Tuple[MessageEvent, ...]:
        """Message events targeting ``channel``, in spec order."""
        return tuple(
            e for e in self.events
            if isinstance(e, MessageEvent) and e.channel == channel
        )

    def spill_factor(self) -> float:
        """The spill-pressure factor (0 disables the event)."""
        for event in self.events:
            if isinstance(event, SpillEvent):
                return event.factor
        return 0.0

    def abort_counts(self) -> Dict[str, int]:
        """phase -> number of injected query aborts."""
        counts: Dict[str, int] = {}
        for event in self.events:
            if isinstance(event, AbortEvent):
                counts[event.phase] = counts.get(event.phase, 0) + event.count
        return counts


def _parse_event(part: str, crashes: Dict[int, str]):
    """Parse one ``kind:detail`` clause of a fault spec."""
    kind, _, detail = part.partition(":")
    kind = kind.strip().lower()
    detail = detail.strip()
    if not detail:
        raise FaultSpecError(f"fault event {part!r} is missing its detail")
    if kind == "crash":
        match = _CRASH_RE.match(detail)
        if not match:
            raise FaultSpecError(
                f"bad crash event {part!r}; expected crash:w<id>@<phase>"
            )
        worker, phase = int(match.group(1)), match.group(2)
        if phase not in CRASH_PHASES:
            raise FaultSpecError(
                f"bad crash phase {phase!r} in {part!r}; "
                f"valid phases: {', '.join(CRASH_PHASES)}"
            )
        if worker in crashes:
            raise FaultSpecError(
                f"worker {worker} already crashes @{crashes[worker]}; "
                "a worker can only die once"
            )
        crashes[worker] = phase
        return CrashEvent(worker=worker, phase=phase)
    if kind == "slow":
        match = _SLOW_RE.match(detail)
        if not match:
            raise FaultSpecError(
                f"bad straggler event {part!r}; expected slow:w<id>x<factor>"
            )
        factor = float(match.group(2))
        if factor < 1.0:
            raise FaultSpecError(
                f"straggler factor must be >= 1, got {factor} in {part!r}"
            )
        return SlowEvent(worker=int(match.group(1)), factor=factor)
    if kind in MESSAGE_KINDS:
        channel, _, prob_text = detail.partition(":")
        if channel not in CHANNELS:
            raise FaultSpecError(
                f"bad channel {channel!r} in {part!r}; "
                f"valid channels: {', '.join(CHANNELS)}"
            )
        try:
            prob = float(prob_text)
        except ValueError:
            raise FaultSpecError(
                f"bad probability {prob_text!r} in {part!r}"
            ) from None
        if not 0.0 < prob <= 1.0:
            raise FaultSpecError(
                f"probability must be in (0, 1], got {prob} in {part!r}"
            )
        return MessageEvent(kind=kind, channel=channel, prob=prob)
    if kind == "spill":
        match = _SPILL_RE.match(detail)
        if not match or float(match.group(1)) <= 0:
            raise FaultSpecError(
                f"bad spill event {part!r}; expected spill:x<factor> "
                "with factor > 0"
            )
        return SpillEvent(factor=float(match.group(1)))
    if kind == "abort":
        phase, _, count_text = detail.partition(":")
        if phase not in ABORT_PHASES:
            raise FaultSpecError(
                f"bad abort phase {phase!r} in {part!r}; "
                f"valid phases: {', '.join(ABORT_PHASES)}"
            )
        try:
            count = int(count_text) if count_text else 1
        except ValueError:
            raise FaultSpecError(
                f"bad abort count {count_text!r} in {part!r}"
            ) from None
        if count < 1:
            raise FaultSpecError(f"abort count must be >= 1 in {part!r}")
        return AbortEvent(phase=phase, count=count)
    raise FaultSpecError(
        f"unknown fault kind {kind!r} in {part!r}; valid kinds: "
        "crash, slow, drop, trunc, dup, spill, abort"
    )
