"""Deterministic fault injection and recovery (chaos layer).

Arm a plan on a warehouse and run any algorithm; the engine recovers
from the injected crashes, stragglers and lost messages, the results
stay bit-identical to the fault-free run, and the trace gains
``recovery`` phases pricing the detection timeouts, re-scans, backoffs
and speculative backups::

    injector = warehouse.arm_faults("crash:w2@scan,drop:shuffle:0.05")
    result = algorithm_by_name("zigzag").run(warehouse, query)
    print(injector.report())
"""

from repro.faults.injector import (
    CrashSignal,
    FaultInjector,
    RecoveryAction,
    ScanFaultHook,
)
from repro.faults.plan import (
    AbortEvent,
    CrashEvent,
    FaultPlan,
    MessageEvent,
    SlowEvent,
    SpillEvent,
)

__all__ = [
    "AbortEvent",
    "CrashEvent",
    "CrashSignal",
    "FaultInjector",
    "FaultPlan",
    "MessageEvent",
    "RecoveryAction",
    "ScanFaultHook",
    "SlowEvent",
    "SpillEvent",
]
