"""Tests for the Gantt renderer and experiment-result serialization."""

import pytest

from repro.bench.experiments import ExperimentResult, ShapeCheck
from repro.bench.serialization import (
    diff_results,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.errors import ReproError, SimulationError
from repro.sim.gantt import render_gantt
from repro.sim.replay import replay_trace
from repro.sim.trace import Trace


def sample_timing():
    trace = Trace("demo")
    trace.add("scan", "hdfs_scan", 40.0)
    trace.add("shuffle", "shuffle", 20.0, streams_from=["scan"])
    trace.add("probe", "cpu", 10.0, after=["shuffle"])
    return replay_trace(trace)


class TestGantt:
    def test_bars_positioned_by_time(self):
        chart = render_gantt(sample_timing(), width=50)
        lines = chart.splitlines()
        scan_line = next(l for l in lines if l.startswith("scan"))
        probe_line = next(l for l in lines if l.startswith("probe"))
        # Scan starts at column 0; probe starts far right.
        assert scan_line.split("|")[1].startswith("#")
        assert probe_line.split("|")[1].startswith(".")

    def test_pipelining_visible(self):
        """The shuffle bar overlaps the scan bar in time."""
        chart = render_gantt(sample_timing(), width=50)
        lines = chart.splitlines()
        scan_bar = next(l for l in lines
                        if l.startswith("scan")).split("|")[1]
        shuffle_bar = next(l for l in lines
                           if l.startswith("shuffle")).split("|")[1]
        overlap = sum(
            1 for a, b in zip(scan_bar, shuffle_bar)
            if a == "#" and b == "#"
        )
        assert overlap > 10

    def test_header_and_axis(self):
        chart = render_gantt(sample_timing())
        assert chart.splitlines()[0].startswith("demo")
        assert "50.6" in chart or "50." in chart

    def test_invalid_width(self):
        with pytest.raises(SimulationError):
            render_gantt(sample_timing(), width=0)

    def test_real_algorithm_schedule(self, loaded_warehouse, paper_query):
        from repro import algorithm_by_name

        result = algorithm_by_name("zigzag").run(
            loaded_warehouse, paper_query
        )
        chart = render_gantt(result.timing)
        assert "db_export" in chart and "hdfs_scan" in chart


def sample_result():
    return ExperimentResult(
        experiment_id="fig8",
        title="Figure 8",
        headers=["algorithm", "seconds"],
        rows=[{"algorithm": "zigzag", "seconds": 93.9},
              {"algorithm": "repartition", "seconds": 217.0}],
        checks=[ShapeCheck("zigzag wins", True)],
        notes="demo",
    )


class TestSerialization:
    def test_round_trip(self, tmp_path):
        path = save_result(sample_result(), tmp_path / "fig8.json")
        loaded = load_result(path)
        original = sample_result()
        assert loaded.experiment_id == original.experiment_id
        assert loaded.rows == original.rows
        assert loaded.checks[0].claim == "zigzag wins"
        assert loaded.all_passed()
        assert loaded.notes == "demo"

    def test_schema_version_guard(self):
        payload = result_to_dict(sample_result())
        payload["schema_version"] = 99
        with pytest.raises(ReproError, match="schema"):
            result_from_dict(payload)

    def test_diff_no_drift(self):
        assert diff_results(sample_result(), sample_result()) == []

    def test_diff_detects_drift(self):
        before = sample_result()
        after = sample_result()
        after.rows[0]["seconds"] = 150.0
        drifts = diff_results(before, after)
        assert len(drifts) == 1
        assert drifts[0]["row"] == 0
        assert drifts[0]["drift"] > 0.5

    def test_diff_different_experiments_rejected(self):
        other = sample_result()
        other.experiment_id = "fig9"
        with pytest.raises(ReproError, match="different experiments"):
            diff_results(sample_result(), other)

    def test_live_experiment_round_trip(self, tmp_path):
        from repro.bench import EXPERIMENTS, WarehouseCache

        result = EXPERIMENTS["table1"].run(
            WarehouseCache(scale=1 / 100_000)
        )
        path = save_result(result, tmp_path / "table1.json")
        loaded = load_result(path)
        assert loaded.all_passed() == result.all_passed()
        assert loaded.rows == result.rows
