"""Property-based tests for table-operation algebraic invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table


def make_table(keys, values):
    schema = Schema([Column("k", DataType.INT64),
                     Column("v", DataType.INT64)])
    return Table(schema, {
        "k": np.array(keys, dtype=np.int64),
        "v": np.array(values, dtype=np.int64),
    })


rows_strategy = st.lists(
    st.tuples(st.integers(-100, 100), st.integers(-10**6, 10**6)),
    min_size=0, max_size=200,
)


@given(rows=rows_strategy, parts=st.integers(1, 9))
@settings(max_examples=60, deadline=None)
def test_split_concat_identity(rows, parts):
    keys = [r[0] for r in rows] or [0]
    values = [r[1] for r in rows] or [0]
    table = make_table(keys, values)
    rebuilt = Table.concat(table.split(parts))
    assert rebuilt.to_rows() == table.to_rows()


@given(rows=rows_strategy, threshold=st.integers(-100, 100))
@settings(max_examples=60, deadline=None)
def test_filter_partition_complement(rows, threshold):
    """filter(mask) and filter(~mask) partition the rows exactly."""
    keys = [r[0] for r in rows] or [0]
    values = [r[1] for r in rows] or [0]
    table = make_table(keys, values)
    mask = table.column("k") <= threshold
    kept = table.filter(mask)
    dropped = table.filter(~mask)
    assert kept.num_rows + dropped.num_rows == table.num_rows
    assert sorted(kept.to_rows() + dropped.to_rows()) == \
        sorted(table.to_rows())


@given(rows=rows_strategy)
@settings(max_examples=60, deadline=None)
def test_project_then_project_is_project(rows):
    keys = [r[0] for r in rows] or [0]
    values = [r[1] for r in rows] or [0]
    table = make_table(keys, values)
    twice = table.project(["k", "v"]).project(["v"])
    once = table.project(["v"])
    assert twice.to_rows() == once.to_rows()


@given(rows=rows_strategy)
@settings(max_examples=60, deadline=None)
def test_sorted_by_is_permutation_and_ordered(rows):
    keys = [r[0] for r in rows] or [0]
    values = [r[1] for r in rows] or [0]
    table = make_table(keys, values)
    ordered = table.sorted_by(["k", "v"])
    assert sorted(ordered.to_rows()) == sorted(table.to_rows())
    pairs = ordered.to_rows()
    assert pairs == sorted(pairs)


@given(rows=rows_strategy, seed=st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_take_gather_matches_python(rows, seed):
    keys = [r[0] for r in rows] or [0]
    values = [r[1] for r in rows] or [0]
    table = make_table(keys, values)
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, table.num_rows, size=min(50, table.num_rows))
    gathered = table.take(indices)
    expected = [table.to_rows()[i] for i in indices.tolist()]
    assert gathered.to_rows() == expected


@given(rows=rows_strategy)
@settings(max_examples=40, deadline=None)
def test_total_bytes_additive_under_split(rows):
    keys = [r[0] for r in rows] or [0]
    values = [r[1] for r in rows] or [0]
    table = make_table(keys, values)
    parts = table.split(4)
    assert sum(p.total_bytes() for p in parts) == table.total_bytes()
