"""Shared fixtures for the test suite.

The expensive fixtures (generated workload, fully loaded warehouse) are
session-scoped; tests must treat them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    HybridWarehouse,
    WorkloadSpec,
    build_paper_query,
    default_config,
    generate_workload,
)
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table

#: Small but non-trivial test scale: 1/50,000 of the paper's tables.
TEST_SCALE = 1.0 / 50_000.0


def make_test_spec(sigma_t=0.1, sigma_l=0.4, s_t=0.2, s_l=0.1, seed=42):
    """A workload spec at the test scale."""
    return WorkloadSpec(
        sigma_t=sigma_t, sigma_l=sigma_l, s_t=s_t, s_l=s_l,
        t_rows=32_000, l_rows=300_000, n_keys=320, n_urls=120, seed=seed,
    )


def build_test_warehouse(workload, format_name="parquet",
                         scale=TEST_SCALE):
    """A loaded warehouse (fresh engines) for a generated workload."""
    warehouse = HybridWarehouse(default_config(scale=scale))
    warehouse.load_db_table("T", workload.t_table, distribute_on="uniqKey")
    warehouse.database.create_index("T", "idx_pred", ["corPred", "indPred"])
    warehouse.database.create_index(
        "T", "idx_bloom", ["corPred", "indPred", "joinKey"]
    )
    warehouse.load_hdfs_table("L", workload.l_table, format_name)
    return warehouse


@pytest.fixture(scope="session")
def paper_workload():
    """The Table-1 parameter point, generated once."""
    return generate_workload(make_test_spec())


@pytest.fixture(scope="session")
def paper_query(paper_workload):
    """The Section 5 query over the session workload."""
    return build_paper_query(paper_workload)


@pytest.fixture(scope="session")
def loaded_warehouse(paper_workload):
    """A fully loaded warehouse over the session workload (read-only)."""
    return build_test_warehouse(paper_workload)


@pytest.fixture
def small_table():
    """A tiny two-column table for operator tests."""
    schema = Schema([
        Column("k", DataType.INT64),
        Column("v", DataType.INT32),
    ])
    return Table(schema, {
        "k": np.array([1, 2, 2, 3, 5], dtype=np.int64),
        "v": np.array([10, 20, 21, 30, 50], dtype=np.int32),
    })
