"""Tests for JEN's locality-aware balanced block scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.hdfs.blocks import Block
from repro.jen.scheduler import assign_blocks


def make_blocks(replica_lists):
    return [
        Block(index, "/f", index * 10, 10, 100.0, tuple(replicas))
        for index, replicas in enumerate(replica_lists)
    ]


class TestAssignment:
    def test_perfect_locality_when_spread(self):
        blocks = make_blocks([(i % 4, (i + 1) % 4) for i in range(16)])
        assignment = assign_blocks(blocks, 4)
        assert assignment.locality_fraction() == 1.0

    def test_balanced_even_with_skewed_replicas(self):
        # Every replica on node 0: balance must win over locality.
        blocks = make_blocks([(0, 1)] * 12)
        assignment = assign_blocks(blocks, 4)
        loads = [len(assignment.blocks_for(w)) for w in range(4)]
        assert max(loads) - min(loads) <= 1

    def test_every_block_assigned_exactly_once(self):
        blocks = make_blocks([(i % 5, (i + 2) % 5) for i in range(23)])
        assignment = assign_blocks(blocks, 5)
        assigned = [
            b.block_id
            for w in range(5) for b in assignment.blocks_for(w)
        ]
        assert sorted(assigned) == list(range(23))

    def test_locality_disabled_round_robins(self):
        # Replicas all on nodes 2 and 3; the offset round-robin spreads
        # blocks evenly and mostly off-replica.
        blocks = make_blocks([(2, 3)] * 8)
        assignment = assign_blocks(blocks, 4, locality=False)
        loads = [len(assignment.blocks_for(w)) for w in range(4)]
        assert loads == [2, 2, 2, 2]
        assert assignment.remote_blocks >= 4
        assert (assignment.local_blocks + assignment.remote_blocks) == 8

    def test_empty_blocks(self):
        assignment = assign_blocks([], 4)
        assert assignment.locality_fraction() == 1.0
        assert assignment.max_rows_per_worker() == 0

    def test_invalid_worker_count(self):
        with pytest.raises(SimulationError):
            assign_blocks([], 0)

    def test_max_rows_per_worker(self):
        blocks = make_blocks([(0,), (1,), (0,)])
        assignment = assign_blocks(blocks, 2)
        assert assignment.max_rows_per_worker() == 20

    @given(
        num_workers=st.integers(1, 12),
        seeds=st.lists(st.integers(0, 11), min_size=1, max_size=80),
    )
    @settings(max_examples=50, deadline=None)
    def test_balance_invariant(self, num_workers, seeds):
        """No worker ever exceeds ceil(blocks / workers) + 1 blocks."""
        blocks = make_blocks([
            (s % num_workers, (s + 1) % num_workers)
            if num_workers > 1 else (0,)
            for s in seeds
        ])
        assignment = assign_blocks(blocks, num_workers)
        target = -(-len(blocks) // num_workers)
        for worker in range(num_workers):
            assert len(assignment.blocks_for(worker)) <= target + 1
        total = sum(
            len(assignment.blocks_for(w)) for w in range(num_workers)
        )
        assert total == len(blocks)
        assert (assignment.local_blocks + assignment.remote_blocks
                == len(blocks))
