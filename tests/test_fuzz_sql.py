"""Seeded fuzz tests for the SQL front end.

Two batteries:

* **round-trip**: a seeded generator emits valid queries of the paper's
  dialect; each must parse deterministically, survive whitespace and
  keyword-case perturbation with an identical AST, and translate to the
  same canonical plan key.
* **mutation**: random byte-level mutations of valid queries must only
  ever raise :class:`~repro.errors.ReproError` subclasses (in practice
  ``SqlError``) — never ``ValueError``/``KeyError``/... — no matter how
  mangled the input.
"""

from __future__ import annotations

import random
import re
import string

import pytest

from repro.errors import ReproError
from repro.service import plan_key
from repro.sql.lexer import KEYWORDS, SqlError, tokenize
from repro.sql.parser import parse_select
from repro.sql.translator import translate

#: Operators the generator may use in local predicates.
_OPS = ("<=", "<", ">=", ">", "=")
#: Aggregates over the HDFS side (always legal in the paper's dialect).
_AGGREGATES = ("COUNT(*)", "SUM(L.indPred)", "MIN(L.corPred)",
               "MAX(L.indPred)", "AVG(L.corPred)")


def generate_query(rng: random.Random) -> str:
    """One valid random query of the paper's class."""
    select = ["extract_group(L.groupByExtractCol)"]
    aggregates = []
    for _ in range(rng.randint(1, 3)):
        aggregate = rng.choice(_AGGREGATES)
        aggregates.append(aggregate)
        if rng.random() < 0.4:
            aggregate += f" AS agg_{rng.randint(0, 99)}"
        select.append(aggregate)

    where = ["T.joinKey = L.joinKey"]
    for table, column in (("T", "corPred"), ("T", "indPred"),
                          ("L", "corPred"), ("L", "indPred")):
        if rng.random() < 0.7:
            threshold = rng.randint(0, 500_000)
            if rng.random() < 0.2:
                threshold = f"{threshold}.{rng.randint(0, 99)}"
            where.append(
                f"{table}.{column} {rng.choice(_OPS)} {threshold}"
            )
    if rng.random() < 0.3:
        values = ", ".join(
            str(rng.randint(0, 200)) for _ in range(rng.randint(1, 4))
        )
        where.append(f"T.corPred IN ({values})")
    if rng.random() < 0.5:
        low, high = sorted((rng.randint(0, 3), rng.randint(0, 3)))
        where.append(
            "days(T.predAfterJoin) - days(L.predAfterJoin) "
            f">= {low}"
        )
        where.append(
            "days(T.predAfterJoin) - days(L.predAfterJoin) "
            f"<= {high}"
        )

    sql = (
        "SELECT " + ", ".join(select)
        + " FROM T, L WHERE " + " AND ".join(where)
        + " GROUP BY extract_group(L.groupByExtractCol)"
    )
    if rng.random() < 0.4:
        direction = rng.choice(("ASC", "DESC", ""))
        sql += f" ORDER BY {rng.choice(aggregates)} {direction}".rstrip()
    if rng.random() < 0.3:
        sql += f" LIMIT {rng.randint(0, 50)}"
    return sql


def perturb(sql: str, rng: random.Random) -> str:
    """Meaning-preserving noise: keyword case and whitespace.

    Only keywords are case-insensitive in the dialect; identifier
    spelling must survive untouched.
    """
    def recase(match: "re.Match") -> str:
        word = match.group(0)
        if word.upper() not in KEYWORDS:
            return word
        return "".join(
            char.swapcase() if rng.random() < 0.5 else char
            for char in word
        )

    noisy = re.sub(r"[A-Za-z_][A-Za-z0-9_]*", recase, sql)
    out = []
    for char in noisy:
        out.append(char)
        if char in ",()" and rng.random() < 0.3:
            out.append(" " * rng.randint(1, 3))
    return "".join(out)


def mutate(sql: str, rng: random.Random) -> str:
    """One random byte-level mutation (insert / delete / replace)."""
    alphabet = string.printable + "@#$%^&~`\\\x00\xff"
    text = list(sql)
    for _ in range(rng.randint(1, 4)):
        kind = rng.randrange(3)
        position = rng.randrange(len(text)) if text else 0
        if kind == 0 and text:
            del text[position]
        elif kind == 1:
            text.insert(position, rng.choice(alphabet))
        elif text:
            text[position] = rng.choice(alphabet)
    return "".join(text)


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(40))
    def test_generated_queries_round_trip(self, seed, loaded_warehouse):
        rng = random.Random(seed)
        sql = generate_query(rng)
        statement = parse_select(sql)
        # Parsing is deterministic (frozen dataclass equality).
        assert parse_select(sql) == statement
        # Case/whitespace noise never changes the AST or the plan.
        noisy = perturb(sql, rng)
        assert parse_select(noisy) == statement
        original = translate(statement, loaded_warehouse)
        perturbed = translate(parse_select(noisy), loaded_warehouse)
        assert plan_key(original.query) == plan_key(perturbed.query)
        assert plan_key(original.query, literals=False) == \
            plan_key(perturbed.query, literals=False)

    def test_generator_is_seeded(self):
        assert generate_query(random.Random(7)) == \
            generate_query(random.Random(7))
        assert generate_query(random.Random(7)) != \
            generate_query(random.Random(8))


class TestMutationFuzz:
    @pytest.mark.parametrize("seed", range(12))
    def test_mutations_raise_only_repro_errors(self, seed,
                                               loaded_warehouse):
        rng = random.Random(seed)
        base = generate_query(rng)
        for _ in range(40):
            mangled = mutate(base, rng)
            try:
                translate(parse_select(mangled), loaded_warehouse)
            except ReproError:
                continue  # SqlError and friends: the typed contract

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(12, 60))
    def test_mutation_sweep(self, seed, loaded_warehouse):
        rng = random.Random(seed)
        base = generate_query(rng)
        for _ in range(120):
            mangled = mutate(base, rng)
            try:
                translate(parse_select(mangled), loaded_warehouse)
            except ReproError:
                continue

    @pytest.mark.parametrize("seed", range(8))
    def test_lexer_never_leaks_internal_errors(self, seed):
        rng = random.Random(seed)
        for _ in range(100):
            junk = "".join(
                rng.choice(string.printable + "\x00\xff")
                for _ in range(rng.randint(0, 60))
            )
            try:
                tokenize(junk)
            except SqlError:
                continue


class TestParserHardening:
    """Regressions for malformed inputs the lexer lets through."""

    @pytest.mark.parametrize("bad_number", ["1..2", "3.4.5", "1.2.3.4"])
    def test_malformed_numbers_raise_sql_error(self, bad_number):
        with pytest.raises(SqlError):
            parse_select(f"SELECT COUNT(*) FROM T, L "
                         f"WHERE T.corPred <= {bad_number} "
                         f"AND T.joinKey = L.joinKey")

    def test_malformed_number_in_in_list(self):
        with pytest.raises(SqlError, match="malformed number"):
            parse_select("SELECT COUNT(*) FROM T, L "
                         "WHERE T.corPred IN (1, 2..3) "
                         "AND T.joinKey = L.joinKey")

    def test_malformed_number_reports_position(self):
        sql = "SELECT 1..2 FROM T"
        with pytest.raises(SqlError, match="position 7"):
            parse_select(sql)
