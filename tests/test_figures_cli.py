"""Tests for the ASCII figure renderer and both CLI entry points."""

import pytest

from repro.bench.experiments import ExperimentResult, ShapeCheck
from repro.bench.figures import render_experiment, render_grouped_bars
from repro.errors import ReproError


def sample_rows():
    return [
        {"panel": "a", "sigma_L": 0.1, "algorithm": "db", "seconds": 47.0},
        {"panel": "a", "sigma_L": 0.1, "algorithm": "zigzag",
         "seconds": 60.0},
        {"panel": "a", "sigma_L": 0.2, "algorithm": "db", "seconds": 300.0},
        {"panel": "a", "sigma_L": 0.2, "algorithm": "zigzag",
         "seconds": 75.0},
    ]


class TestRenderer:
    def test_bars_scale_with_values(self):
        text = render_grouped_bars(
            sample_rows(), "sigma_L", "algorithm", "seconds",
            title="demo", panel_key="panel",
        )
        lines = [line for line in text.splitlines() if "|" in line]
        bar_lengths = [line.count("#") for line in lines]
        # 300s must be the longest bar; 47s the shortest.
        assert max(bar_lengths) == bar_lengths[2]
        assert min(bar_lengths) == bar_lengths[0]

    def test_title_and_panels_present(self):
        text = render_grouped_bars(
            sample_rows(), "sigma_L", "algorithm", "seconds",
            title="demo", panel_key="panel",
        )
        assert text.startswith("demo")
        assert "panel a:" in text

    def test_empty_rows_rejected(self):
        with pytest.raises(ReproError):
            render_grouped_bars([], "x", "s", "v")

    def test_render_experiment_bar_shape(self):
        result = ExperimentResult(
            experiment_id="x", title="t",
            headers=["panel", "sigma_L", "algorithm", "seconds"],
            rows=sample_rows(),
            checks=[ShapeCheck("c", True)],
        )
        assert "|" in render_experiment(result)

    def test_render_experiment_falls_back_to_table(self):
        result = ExperimentResult(
            experiment_id="x", title="t",
            headers=["algorithm", "tuples"],
            rows=[{"algorithm": "zigzag", "tuples": 10.0}],
        )
        rendered = render_experiment(result)
        assert "zigzag" in rendered and "|" not in rendered


class TestBenchCli:
    def test_list(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--list"]) == 0
        captured = capsys.readouterr().out
        assert "table1" in captured and "fig15" in captured

    def test_single_experiment(self, capsys, tmp_path):
        from repro.bench.__main__ import main

        code = main(["table1", "--scale", "100000",
                     "--output", str(tmp_path)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "PASS" in captured
        assert (tmp_path / "table1.txt").exists()

    def test_unknown_experiment(self):
        from repro.bench.__main__ import main

        with pytest.raises(Exception):
            main(["fig99"])


class TestTopLevelCli:
    def test_advise(self, capsys):
        from repro.__main__ import main

        assert main(["advise", "--sigma-t", "0.1",
                     "--sigma-l", "0.2"]) == 0
        captured = capsys.readouterr().out
        assert "recommended:" in captured
        assert "zigzag" in captured

    def test_sql_requires_query(self, capsys):
        from repro.__main__ import main

        assert main(["sql"]) == 2

    def test_sql_inline(self, capsys):
        from repro.__main__ import main

        code = main([
            "sql",
            "SELECT L.joinKey, COUNT(*) FROM T, L "
            "WHERE T.joinKey = L.joinKey GROUP BY L.joinKey",
            "--algorithm", "repartition", "--limit", "2",
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "algorithm: repartition" in captured
        assert "more rows" in captured
