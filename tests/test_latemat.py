"""Tests for late materialization (:mod:`repro.latemat`).

Covers the toggle, the thin/prune/stitch primitives, the compact wire
codec they ship over, the dictionary-aware wire accounting, the
fetch-amplification model, the advisor's accept/decline decision, the
service plane's bytes-shipped counters, and — the load-bearing part —
oracle identity of every algorithm with the toggle on, including the
skew, fault, and process-backend interactions.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import HybridConfig
from repro.core.advisor import JoinAdvisor, WorkloadEstimate
from repro.errors import TableError
from repro.kernels import wirecodec
from repro.latemat import (
    PAGE_ROWS,
    ROWID_BYTES,
    ROWID_COLUMN,
    PayloadStore,
    StitchStats,
    fetch_amplification,
    is_thin,
    late_materialization_enabled,
    set_late_materialization_enabled,
    stitch_parts,
    thin_for_transfer,
    thin_table,
)
from repro.query.plan import needed_wire_columns
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table
from repro.testkit import generator, oracle
from repro.testkit.generator import ALL_ALGORITHMS, ConfigCell, run_cell


@pytest.fixture(autouse=True)
def _latemat_off_between_tests():
    """No test may leak the global toggle."""
    yield
    set_late_materialization_enabled(False)


def _wide_table(rows: int = 200) -> Table:
    """joinKey (int32) + three payload columns, one dict-encoded."""
    schema = Schema([
        Column("joinKey", DataType.INT32),
        Column("val", DataType.INT64),
        Column("price", DataType.FLOAT64),
        Column("tag", DataType.DICT_STRING, width_bytes=24),
    ])
    rng = np.random.default_rng(11)
    return Table(
        schema,
        {
            "joinKey": rng.integers(0, 40, rows).astype(np.int32),
            "val": rng.integers(0, 1 << 40, rows).astype(np.int64),
            "price": rng.random(rows),
            "tag": rng.integers(0, 3, rows).astype(np.int32),
        },
        {"tag": np.asarray(["aa", "bb", "cc"], dtype=object)},
    )


# ----------------------------------------------------------------------
# Toggle
# ----------------------------------------------------------------------
class TestToggle:
    def test_default_off(self):
        assert late_materialization_enabled() is False

    def test_set_returns_previous(self):
        assert set_late_materialization_enabled(True) is False
        assert late_materialization_enabled() is True
        assert set_late_materialization_enabled(False) is True

    def test_off_declines_thinning(self):
        assert thin_for_transfer([_wide_table()], "joinKey") is None


# ----------------------------------------------------------------------
# Thin / prune / stitch primitives
# ----------------------------------------------------------------------
class TestThin:
    def test_thin_table_schema_and_rowids(self):
        table = _wide_table()
        rowids = np.arange(table.num_rows, dtype=np.int64)
        thin = thin_table(table, "joinKey", rowids)
        assert is_thin(thin)
        assert list(thin.schema.names) == ["joinKey", ROWID_COLUMN]
        np.testing.assert_array_equal(
            thin.column("joinKey"), table.column("joinKey"))
        np.testing.assert_array_equal(thin.column(ROWID_COLUMN), rowids)

    def test_store_rowids_are_global_offsets(self):
        set_late_materialization_enabled(True)
        table = _wide_table()
        parts = [table.take(np.arange(0, 80)),
                 table.take(np.arange(80, 200))]
        store = thin_for_transfer(parts, "joinKey")
        assert store is not None
        thin = store.thin_tables()
        np.testing.assert_array_equal(
            thin[1].column(ROWID_COLUMN)[:3], [80, 81, 82])
        fetched = store.fetch(np.asarray([0, 80, 199]))
        assert fetched.column("val")[1] == table.column("val")[80]

    def test_narrow_payload_declines(self):
        set_late_materialization_enabled(True)
        # key + one int32: 8 bytes/row, under the 12-byte thin row.
        schema = Schema([Column("joinKey", DataType.INT32),
                         Column("x", DataType.INT32)])
        table = Table(schema, {
            "joinKey": np.arange(10, dtype=np.int32),
            "x": np.arange(10, dtype=np.int32),
        })
        assert thin_for_transfer([table], "joinKey") is None

    def test_already_thin_declines(self):
        set_late_materialization_enabled(True)
        thin = thin_table(_wide_table(), "joinKey",
                          np.arange(200, dtype=np.int64))
        assert thin_for_transfer([thin], "joinKey") is None

    def test_needed_columns_dropped_from_store(self):
        set_late_materialization_enabled(True)
        store = thin_for_transfer([_wide_table()], "joinKey",
                                  needed=("joinKey", "val", "price"))
        assert store is not None
        assert store.payload_names() == ["val", "price"]

    def test_narrow_needed_projection_declines(self):
        set_late_materialization_enabled(True)
        # Projected to key + one int64 the row is exactly the 12-byte
        # thin width — nothing to defer, so thinning stands down.
        assert thin_for_transfer([_wide_table()], "joinKey",
                                 needed=("joinKey", "val")) is None

    def test_stitch_parts_prunes_and_refetches(self):
        set_late_materialization_enabled(True)
        table = _wide_table()
        store = thin_for_transfer([table], "joinKey")
        stats = StitchStats()
        other_keys = np.asarray([3, 7, 11], dtype=np.int32)
        stitched = stitch_parts(store, store.thin_tables(), "joinKey",
                                other_keys, stats, side="l")
        assert len(stitched) == 1
        survivors = stitched[0]
        assert not is_thin(survivors)
        assert set(np.unique(survivors.column("joinKey"))) <= {3, 7, 11}
        mask = np.isin(table.column("joinKey"), other_keys)
        assert survivors.num_rows == int(mask.sum())
        # Full payload came back for every survivor, in rowid order.
        expected = table.take(np.flatnonzero(mask))
        assert sorted(survivors.to_rows()) == sorted(expected.to_rows())
        assert stats.l_thin_tuples == table.num_rows
        assert stats.l_fetched_tuples == survivors.num_rows
        assert stats.fetched_wire_bytes > 0

    def test_stitch_parts_passes_full_rows_through(self):
        stats = StitchStats()
        table = _wide_table()
        out = stitch_parts(None, [table], "joinKey",
                           np.asarray([1]), stats)
        assert out[0] is table


# ----------------------------------------------------------------------
# Fetch amplification
# ----------------------------------------------------------------------
class TestAmplification:
    def test_empty_batch(self):
        assert fetch_amplification(np.asarray([], dtype=np.int64)) == 1.0

    def test_dense_page_costs_one(self):
        assert fetch_amplification(np.arange(PAGE_ROWS)) == 1.0

    def test_one_rowid_per_page_costs_page_rows(self):
        scattered = np.arange(0, 10 * PAGE_ROWS, PAGE_ROWS)
        assert fetch_amplification(scattered) == float(PAGE_ROWS)

    def test_bounded(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            ids = rng.choice(4096, size=rng.integers(1, 300),
                             replace=False)
            amp = fetch_amplification(ids)
            assert 1.0 <= amp <= float(PAGE_ROWS)


# ----------------------------------------------------------------------
# Wire codec
# ----------------------------------------------------------------------
class TestWireCodec:
    def test_varint_round_trip(self):
        values = np.asarray(
            [0, 1, 127, 128, 300, 2**32, 2**63 - 1], dtype=np.uint64)
        decoded = wirecodec.decode_varints(
            wirecodec.encode_varints(values))
        np.testing.assert_array_equal(decoded, values)

    def test_truncated_varints_raise(self):
        data = wirecodec.encode_varints(
            np.asarray([300], dtype=np.uint64))
        with pytest.raises(TableError):
            wirecodec.decode_varints(data[:-1])

    def test_rowid_round_trip_sorts(self):
        ids = np.asarray([900, 3, 3000, 64, 65], dtype=np.int64)
        decoded = wirecodec.decode_rowids(wirecodec.encode_rowids(ids))
        np.testing.assert_array_equal(decoded, np.sort(ids))

    def test_rowid_count_mismatch_raises(self):
        good = wirecodec.encode_rowids(np.arange(5, dtype=np.int64))
        bad = wirecodec.encode_varints(
            np.asarray([7], dtype=np.uint64)) + good[1:]
        with pytest.raises(TableError):
            wirecodec.decode_rowids(bad)

    def test_table_round_trip_all_tags(self):
        # const int, sorted (delta), raw float, dict string: every tag.
        schema = Schema([
            Column("c", DataType.INT32),
            Column("sorted", DataType.INT64),
            Column("f", DataType.FLOAT64),
            Column("tag", DataType.DICT_STRING, width_bytes=24),
        ])
        rng = np.random.default_rng(5)
        table = Table(
            schema,
            {
                "c": np.full(50, 9, dtype=np.int32),
                "sorted": np.sort(
                    rng.integers(0, 1 << 40, 50)).astype(np.int64),
                "f": rng.random(50),
                "tag": rng.integers(0, 2, 50).astype(np.int32),
            },
            {"tag": np.asarray(["x", "longer-entry"], dtype=object)},
        )
        decoded = wirecodec.decode_table(
            wirecodec.encode_table(table), schema)
        assert decoded.to_rows() == table.to_rows()

    def test_sorted_rowids_beat_raw_int64(self):
        ids = np.arange(10_000, 12_000, dtype=np.int64)
        assert wirecodec.encoded_rowid_bytes(ids) < ids.nbytes / 4

    def test_truncated_table_raises(self):
        table = _wide_table(20)
        data = wirecodec.encode_table(table)
        with pytest.raises(TableError):
            wirecodec.decode_table(data[:len(data) // 2], table.schema)


# ----------------------------------------------------------------------
# Dictionary-aware wire accounting
# ----------------------------------------------------------------------
class TestWireAccounting:
    def test_dict_column_cheaper_on_wire_than_logical(self):
        table = _wide_table()
        # Logical: declared varchar width; wire: 4-byte ids + the
        # dictionary amortised over the rows.
        assert table.row_bytes(["tag"]) == 24
        assert table.wire_row_bytes(["tag"]) < 24
        assert table.wire_row_bytes() < table.row_bytes()

    def test_fixed_width_columns_price_identically(self):
        table = _wide_table()
        names = ["joinKey", "val", "price"]
        assert table.wire_row_bytes(names) == table.row_bytes(names)

    def test_empty_table_does_not_divide_by_zero(self):
        empty = _wide_table().take(np.asarray([], dtype=np.int64))
        assert empty.num_rows == 0
        assert empty.wire_row_bytes() >= 0.0


# ----------------------------------------------------------------------
# Needed wire columns
# ----------------------------------------------------------------------
class TestNeededWireColumns:
    def test_only_referenced_payload_survives(self, paper_query):
        from repro.relational.aggregates import AggregateSpec

        # The paper query projects (joinKey, predAfterJoin) from T;
        # with no post-join predicate and a count, predAfterJoin is
        # provably dead wire weight.
        dead = dataclasses.replace(
            paper_query,
            post_join_predicate=None,
            aggregates=(AggregateSpec("count"),),
        )
        assert needed_wire_columns(dead, "db") == (dead.db_join_key,)
        live = dataclasses.replace(
            dead,
            aggregates=(AggregateSpec("max", "t_predAfterJoin"),),
        )
        assert "predAfterJoin" in needed_wire_columns(live, "db")

    def test_join_key_always_needed(self, paper_query):
        for side in ("db", "hdfs"):
            assert needed_wire_columns(paper_query, side)[0] in (
                paper_query.db_join_key, paper_query.hdfs_join_key)

    def test_bad_side_rejected(self, paper_query):
        with pytest.raises(ValueError):
            needed_wire_columns(paper_query, "edw")


# ----------------------------------------------------------------------
# Advisor decision
# ----------------------------------------------------------------------
class TestAdvisorDecision:
    @staticmethod
    def _advisor() -> JoinAdvisor:
        """Advisor on a volume-bound (constrained-switch) link."""
        config = HybridConfig()
        cluster = dataclasses.replace(
            config.cluster, switch_bytes_per_s=25.0 * 1024 * 1024)
        return JoinAdvisor(dataclasses.replace(config, cluster=cluster))

    @staticmethod
    def _estimate(**overrides) -> WorkloadEstimate:
        base = dict(
            t_rows=200e6, l_rows=600e6, sigma_t=0.3, sigma_l=0.1,
            s_t=0.3, s_l=0.2, t_wire_bytes=50.0, l_wire_bytes=32.0,
            t_key_clustered=True, l_key_clustered=True,
        )
        base.update(overrides)
        return WorkloadEstimate(**base)

    def test_accepts_selective_wide_clustered(self):
        set_late_materialization_enabled(True)
        decision = self._advisor().late_materialization_decision(
            self._estimate())
        assert decision.use
        assert decision.latemat_seconds < decision.classic_seconds

    def test_declines_low_selectivity(self):
        set_late_materialization_enabled(True)
        decision = self._advisor().late_materialization_decision(
            self._estimate(s_t=0.9, s_l=0.9, t_key_clustered=False,
                           l_key_clustered=False))
        assert not decision.use
        assert "keeps most rows" in decision.rationale

    def test_declines_when_toggle_off(self):
        decision = self._advisor().late_materialization_decision(
            self._estimate())
        assert not decision.enabled
        assert not decision.use
        assert "disabled" in decision.rationale

    def test_declines_narrow_payload(self):
        set_late_materialization_enabled(True)
        decision = self._advisor().late_materialization_decision(
            self._estimate(t_wire_bytes=10.0, l_wire_bytes=12.0))
        assert not decision.use
        assert "thin row" in decision.rationale

    def test_observed_selectivity_overrides_estimate(self):
        set_late_materialization_enabled(True)
        advisor = self._advisor()
        optimistic = self._estimate(s_t=0.05, s_l=0.05)
        assert advisor.late_materialization_decision(optimistic).use
        refined = advisor.late_materialization_decision(
            optimistic, observed_s_t=1.0, observed_s_l=1.0)
        assert refined.latemat_seconds > refined.classic_seconds

    def test_clustering_lowers_latemat_cost(self):
        set_late_materialization_enabled(True)
        advisor = self._advisor()
        clustered = advisor.late_materialization_decision(
            self._estimate())
        scattered = advisor.late_materialization_decision(
            self._estimate(t_key_clustered=False,
                           l_key_clustered=False))
        assert clustered.latemat_seconds < scattered.latemat_seconds


# ----------------------------------------------------------------------
# Oracle identity with the toggle on
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def latemat_case():
    return generator.generate_data_case(5)


class TestOracleIdentity:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_every_algorithm(self, latemat_case, algorithm):
        cell = ConfigCell(algorithm=algorithm, workers=4,
                          late_materialization=True)
        result = run_cell(latemat_case, cell)
        diff = oracle.compare_tables(
            result, latemat_case.oracle_rows(), label=cell.label())
        assert diff is None, diff

    @pytest.mark.parametrize("cell", [
        ConfigCell(algorithm="repartition(BF)", workers=4,
                   skew_handling=True, late_materialization=True),
        ConfigCell(algorithm="zigzag", workers=30,
                   fault_spec="crash:w2@scan", late_materialization=True),
        ConfigCell(algorithm="repartition", workers=30,
                   fault_spec="spill:x0.5", late_materialization=True),
        ConfigCell(algorithm="db", workers=4, format_name="text",
                   late_materialization=True),
    ], ids=lambda cell: cell.label())
    def test_hard_interactions(self, latemat_case, cell):
        result = run_cell(latemat_case, cell)
        diff = oracle.compare_tables(
            result, latemat_case.oracle_rows(), label=cell.label())
        assert diff is None, diff

    def test_process_backend(self, latemat_case):
        cell = ConfigCell(algorithm="repartition", workers=4,
                          backend="process", late_materialization=True)
        result = run_cell(latemat_case, cell)
        diff = oracle.compare_tables(
            result, latemat_case.oracle_rows(), label=cell.label())
        assert diff is None, diff

    def test_toggle_restored_after_run(self, latemat_case):
        run_cell(latemat_case, ConfigCell(
            algorithm="db", workers=4, late_materialization=True))
        assert late_materialization_enabled() is False

    def test_cell_label_names_the_axis(self):
        cell = ConfigCell(algorithm="db", workers=4,
                          late_materialization=True)
        assert "latemat" in cell.label()


# ----------------------------------------------------------------------
# Trace accounting + stats with the toggle on
# ----------------------------------------------------------------------
class TestTraceAccounting:
    @pytest.fixture(scope="class")
    def latemat_run(self, loaded_warehouse, paper_query):
        from repro import algorithm_by_name

        previous = set_late_materialization_enabled(True)
        try:
            return algorithm_by_name("db").run(
                loaded_warehouse, paper_query)
        finally:
            set_late_materialization_enabled(previous)

    def test_bytes_shipped_metadata(self, latemat_run):
        shipped = latemat_run.trace.metadata["bytes_shipped"]
        for key in ("export", "shuffle", "relay", "stitch",
                    "cross_cluster", "total"):
            assert key in shipped
        assert shipped["total"] > 0
        assert shipped["cross_cluster"] > 0

    def test_encoded_wire_bytes_tracked(self, latemat_run):
        assert latemat_run.stats.encoded_wire_bytes > 0


# ----------------------------------------------------------------------
# Service counters and the report surface
# ----------------------------------------------------------------------
class TestServiceCounters:
    @pytest.fixture(scope="class")
    def drained_service(self, loaded_warehouse, paper_query):
        from repro.service import (
            AdmissionConfig,
            QueryService,
            ServiceConfig,
        )

        config = ServiceConfig(
            admission=AdmissionConfig(slots=4, max_queue=16,
                                      queue_timeout=1e9,
                                      shed_fraction=None),
            enable_result_cache=False,
            enable_feedback=False,
        )
        service = QueryService(loaded_warehouse, config)
        for index, algorithm in enumerate(("db", "repartition")):
            service.submit(paper_query, tenant=f"t{index}", at=0.0,
                           algorithm=algorithm)
        service.drain()
        return service

    def test_net_bytes_counters(self, drained_service):
        summary = drained_service.metrics.summary()
        shipped = summary["bytes_shipped"]
        assert shipped.get("shuffle", 0) > 0
        assert shipped.get("cross_cluster", 0) > 0

    def test_per_tenant_latency(self, drained_service):
        tenants = drained_service.metrics.summary()["tenants"]
        assert set(tenants) == {"t0", "t1"}
        for stats in tenants.values():
            assert stats["count"] == 1
            assert stats["p50"] <= stats["p95"] <= stats["p99"]

    def test_render_report_sections(self, drained_service):
        report = drained_service.metrics.render_report()
        assert "per-tenant latency" in report
        assert "bytes shipped" in report


# ----------------------------------------------------------------------
# Bench gate logic (no bench run: synthetic payloads)
# ----------------------------------------------------------------------
class TestBenchGates:
    @staticmethod
    def _payload(ratio=1.6, speedup=1.44, stitch=9000,
                 identical=True, accept=True, decline=True):
        cell = {
            "off": {"cross_cluster_bytes": 1000, "total_bytes": 2000,
                    "stitch_bytes": 0, "e2e_seconds": 76.0,
                    "encoded_wire_bytes": 1, "oracle_identical": True},
            "on": {"cross_cluster_bytes": int(1000 / ratio),
                   "total_bytes": 1500, "stitch_bytes": stitch,
                   "e2e_seconds": round(76.0 / speedup, 3),
                   "encoded_wire_bytes": 1,
                   "oracle_identical": identical},
            "cross_bytes_ratio": ratio,
            "total_bytes_ratio": 1.3,
            "e2e_speedup": speedup,
        }
        return {
            "gated_algorithm": "db",
            "cells": {"wide-selective": {"db": cell}},
            "advisor": {
                "wide_selective": {"use": accept},
                "low_selectivity": {"use": not decline},
            },
        }

    def test_clean_payload_passes(self):
        from repro.bench.latemat import check_regression

        payload = self._payload()
        assert check_regression(payload, payload) == []

    @pytest.mark.parametrize("kwargs, needle", [
        (dict(ratio=1.2), "hard"),
        (dict(speedup=0.9), "lost end-to-end"),
        (dict(stitch=0), "never engaged"),
        (dict(identical=False), "diverged"),
        (dict(accept=False), "advisor declined"),
        (dict(decline=False), "advisor accepted"),
    ])
    def test_each_gate_trips(self, kwargs, needle):
        from repro.bench.latemat import check_regression

        payload = self._payload(**kwargs)
        failures = check_regression(payload, self._payload())
        assert any(needle in failure for failure in failures), failures

    def test_ratio_regression_vs_baseline(self):
        from repro.bench.latemat import check_regression

        baseline = self._payload(ratio=4.0, speedup=3.0)
        current = self._payload(ratio=1.6, speedup=1.44)
        failures = check_regression(current, baseline,
                                    allowed_factor=2.0)
        assert any("fell below" in failure for failure in failures)
