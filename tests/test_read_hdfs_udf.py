"""Tests for predicate fragments and the read_hdfs UDF (paper §4.1.1)."""

import numpy as np
import pytest

from repro.relational.expressions import TruePredicate
from repro.sql.lexer import SqlError
from repro.sql.predicates import predicate_from_sql
from repro.workload.scenario import log_schema


class TestPredicateFragments:
    def test_empty_fragment_is_true(self):
        predicate = predicate_from_sql("", log_schema())
        assert isinstance(predicate, TruePredicate)

    def test_simple_conjunction(self, paper_workload):
        predicate = predicate_from_sql(
            "corPred <= 1000 AND indPred <= 500000", log_schema()
        )
        mask = predicate.evaluate(paper_workload.l_table)
        table = paper_workload.l_table
        expected = (table.column("corPred") <= 1000) & \
            (table.column("indPred") <= 500000)
        assert (mask == expected).all()

    def test_literal_on_left(self, paper_workload):
        flipped = predicate_from_sql("1000 >= corPred", log_schema())
        direct = predicate_from_sql("corPred <= 1000", log_schema())
        table = paper_workload.l_table
        assert (flipped.evaluate(table) == direct.evaluate(table)).all()

    def test_udf_predicate(self, paper_workload, loaded_warehouse):
        loaded_warehouse.udfs.register("tens", lambda v: int(v) // 10)
        predicate = predicate_from_sql(
            "tens(indPred) <= 100", log_schema(), loaded_warehouse.udfs
        )
        table = paper_workload.l_table.slice(0, 500)
        mask = predicate.evaluate(table)
        expected = table.column("indPred") // 10 <= 100
        assert (mask == expected).all()

    def test_unknown_column(self):
        with pytest.raises(SqlError, match="unknown column"):
            predicate_from_sql("ghost <= 1", log_schema())

    def test_unknown_udf(self):
        with pytest.raises(SqlError, match="unknown UDF"):
            predicate_from_sql("mystery(corPred) <= 1", log_schema())

    def test_column_to_column_rejected(self):
        with pytest.raises(SqlError, match="literal"):
            predicate_from_sql("corPred <= indPred", log_schema())

    def test_trailing_garbage(self):
        with pytest.raises(SqlError, match="trailing"):
            predicate_from_sql("corPred <= 1 GROUP", log_schema())


class TestReadHdfsUdf:
    def test_registered_on_warehouse(self, loaded_warehouse):
        assert "read_hdfs" in loaded_warehouse.udfs.names()

    def test_full_read(self, loaded_warehouse, paper_workload):
        result = loaded_warehouse.udfs.call("read_hdfs", "L")
        assert result.num_rows == paper_workload.l_table.num_rows
        assert result.schema.names == paper_workload.l_table.schema.names

    def test_predicate_and_projection_pushdown(self, loaded_warehouse,
                                               paper_workload):
        thresholds = paper_workload.l_thresholds
        result = loaded_warehouse.udfs.call(
            "read_hdfs", "L",
            f"corPred <= {thresholds.cor_threshold} AND "
            f"indPred <= {thresholds.ind_threshold}",
            "joinKey, predAfterJoin",
        )
        assert result.schema.names == ("joinKey", "predAfterJoin")
        table = paper_workload.l_table
        expected = (
            (table.column("corPred") <= thresholds.cor_threshold)
            & (table.column("indPred") <= thresholds.ind_threshold)
        ).sum()
        assert result.num_rows == int(expected)

    def test_bloom_filter_pushdown(self, loaded_warehouse, paper_workload):
        """The paper's DB-side join with Bloom filter, spelled as UDF
        calls: cal_filter/get_filter on each worker partition,
        combine_filter, then read_hdfs with the global filter."""
        udfs = loaded_warehouse.udfs
        query_key = "joinKey"
        bits = loaded_warehouse.config.bloom_bits()
        local_filters = []
        for worker in loaded_warehouse.database.workers:
            partition = worker.partition("T")
            mask = partition.column("corPred") <= \
                paper_workload.t_thresholds.cor_threshold
            keys = partition.column(query_key)[mask]
            local_filters.append(
                udfs.call("get_filter", udfs.call("cal_filter", keys, bits))
            )
        global_filter = udfs.call("combine_filter", local_filters)

        unfiltered = udfs.call("read_hdfs", "L", "", "joinKey")
        filtered = udfs.call(
            "read_hdfs", "L", "", "joinKey", global_filter, query_key
        )
        assert filtered.num_rows < unfiltered.num_rows
        # No joinable row may be lost.
        t_mask = paper_workload.t_table.column("corPred") <= \
            paper_workload.t_thresholds.cor_threshold
        t_keys = np.unique(
            paper_workload.t_table.column(query_key)[t_mask]
        )
        kept = np.unique(filtered.column(query_key))
        joinable = np.intersect1d(
            t_keys, np.unique(unfiltered.column(query_key))
        )
        assert np.isin(joinable, kept).all()

    def test_unknown_table(self, loaded_warehouse):
        with pytest.raises(Exception):
            loaded_warehouse.udfs.call("read_hdfs", "ghost")
