"""Unit tests for repro.relational.expressions."""

import numpy as np
import pytest

from repro.errors import ExpressionError
from repro.relational.expressions import (
    BetweenDayDiff,
    CompareOp,
    Conjunction,
    Disjunction,
    TruePredicate,
    UdfPredicate,
    compare,
    conjunction_of,
)
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table


def date_table():
    schema = Schema([
        Column("t_date", DataType.DATE),
        Column("l_date", DataType.DATE),
    ])
    return Table(schema, {
        "t_date": np.array([5, 5, 5, 5]),
        "l_date": np.array([5, 4, 3, 6]),
    })


class TestCompareOps:
    # Rows under test hold k = [1, 2, 2].
    @pytest.mark.parametrize("op,expected", [
        ("==", [False, True, True]),
        ("!=", [True, False, False]),
        ("<", [True, False, False]),
        ("<=", [True, True, True]),
        (">", [False, False, False]),
        (">=", [False, True, True]),
    ])
    def test_all_operators(self, op, expected, small_table):
        predicate = compare("k", op, 2)
        table = small_table.slice(0, 3)
        assert predicate.evaluate(table).tolist() == expected

    def test_unknown_operator(self):
        with pytest.raises(ExpressionError, match="unknown comparison"):
            compare("k", "~", 1)

    def test_columns(self):
        assert compare("k", "<", 1).columns() == ("k",)


class TestBooleanCombinators:
    def test_and(self, small_table):
        predicate = compare("k", ">=", 2) & compare("v", "<=", 21)
        assert predicate.evaluate(small_table).tolist() == [
            False, True, True, False, False
        ]

    def test_or(self, small_table):
        predicate = compare("k", "==", 1) | compare("k", "==", 5)
        assert predicate.evaluate(small_table).tolist() == [
            True, False, False, False, True
        ]

    def test_not(self, small_table):
        predicate = ~compare("k", "==", 2)
        assert predicate.evaluate(small_table).tolist() == [
            True, False, False, True, True
        ]

    def test_columns_deduplicated(self):
        predicate = compare("a", "<", 1) & compare("a", ">", 0) \
            & compare("b", "==", 2)
        assert predicate.columns() == ("a", "b")

    def test_empty_conjunction_true(self, small_table):
        assert Conjunction(()).evaluate(small_table).all()

    def test_empty_disjunction_false(self, small_table):
        assert not Disjunction(()).evaluate(small_table).any()

    def test_true_predicate(self, small_table):
        assert TruePredicate().evaluate(small_table).all()
        assert TruePredicate().columns() == ()

    def test_conjunction_of_helper(self, small_table):
        assert isinstance(conjunction_of([]), TruePredicate)
        single = compare("k", "<", 3)
        assert conjunction_of([single]) is single
        assert isinstance(
            conjunction_of([single, TruePredicate(), single]), Conjunction
        )


class TestBetweenDayDiff:
    def test_paper_post_join_predicate(self):
        predicate = BetweenDayDiff("t_date", "l_date", low=0, high=1)
        # diffs: 0, 1, 2, -1 -> True, True, False, False
        assert predicate.evaluate(date_table()).tolist() == [
            True, True, False, False
        ]

    def test_columns(self):
        predicate = BetweenDayDiff("t_date", "l_date")
        assert predicate.columns() == ("t_date", "l_date")


class TestUdfPredicate:
    def test_region_style_udf(self, small_table):
        predicate = UdfPredicate(
            "is_even", "v", lambda values: values % 2 == 0
        )
        assert predicate.evaluate(small_table).tolist() == [
            True, True, False, True, True
        ]

    def test_bad_return_shape_raises(self, small_table):
        predicate = UdfPredicate("bad", "v", lambda values: values)
        with pytest.raises(ExpressionError, match="boolean mask"):
            predicate.evaluate(small_table)
