"""Tests for SQL translation and the SqlSession execution engine."""

import pytest

from repro import build_paper_query, reference_join
from repro.relational.expressions import BetweenDayDiff, ColumnPairPredicate
from repro.sql import SqlSession
from repro.sql.lexer import SqlError


def paper_sql(workload, extra=""):
    tt, lt = workload.t_thresholds, workload.l_thresholds
    return f"""
        SELECT extract_group(L.groupByExtractCol), COUNT(*)
        FROM T, L
        WHERE T.corPred <= {tt.cor_threshold}
          AND T.indPred <= {tt.ind_threshold}
          AND L.corPred <= {lt.cor_threshold}
          AND L.indPred <= {lt.ind_threshold}
          AND T.joinKey = L.joinKey
          AND days(T.predAfterJoin) - days(L.predAfterJoin) >= 0
          AND days(T.predAfterJoin) - days(L.predAfterJoin) <= 1
          {extra}
        GROUP BY extract_group(L.groupByExtractCol)
    """


@pytest.fixture(scope="module")
def session(loaded_warehouse):
    return SqlSession(loaded_warehouse)


class TestTranslation:
    def test_paper_query_translates(self, session, paper_workload):
        translation = session.explain(paper_sql(paper_workload))
        query = translation.query
        assert query.db_table == "T" and query.hdfs_table == "L"
        assert query.db_join_key == "joinKey"
        assert set(query.db_projection) == {"joinKey", "predAfterJoin"}
        assert set(query.hdfs_projection) == {
            "joinKey", "predAfterJoin", "groupByExtractCol"
        }
        assert query.group_by == ("l_extract_group_groupByExtractCol",)
        post = query.post_join_predicate
        assert isinstance(post, BetweenDayDiff)
        assert (post.low, post.high) == (0, 1)

    def test_literal_on_left_normalised(self, session, paper_workload):
        tt = paper_workload.t_thresholds
        translation = session.explain(f"""
            SELECT L.joinKey, COUNT(*) FROM T, L
            WHERE {tt.cor_threshold} >= T.corPred
              AND T.joinKey = L.joinKey
            GROUP BY L.joinKey
        """)
        selectivity = translation.query.db_predicate
        assert selectivity.columns() == ("corPred",)

    def test_column_pair_post_join(self, session):
        translation = session.explain("""
            SELECT L.joinKey, COUNT(*) FROM T, L
            WHERE T.joinKey = L.joinKey
              AND T.predAfterJoin >= L.predAfterJoin
            GROUP BY L.joinKey
        """)
        post = translation.query.post_join_predicate
        assert isinstance(post, ColumnPairPredicate)
        assert post.left_column == "t_predAfterJoin"

    def test_unknown_table(self, session):
        with pytest.raises(SqlError, match="unknown table"):
            session.explain(
                "SELECT a, COUNT(*) FROM T, ghost "
                "WHERE T.joinKey = ghost.k GROUP BY a"
            )

    def test_unknown_column(self, session):
        with pytest.raises(SqlError, match="no column"):
            session.explain(
                "SELECT L.joinKey, COUNT(*) FROM T, L "
                "WHERE T.ghost = L.joinKey GROUP BY L.joinKey"
            )

    def test_ambiguous_column(self, session):
        with pytest.raises(SqlError, match="ambiguous"):
            session.explain(
                "SELECT L.joinKey, COUNT(*) FROM T, L "
                "WHERE joinKey <= 5 AND T.joinKey = L.joinKey "
                "GROUP BY L.joinKey"
            )

    def test_missing_join_condition(self, session):
        with pytest.raises(SqlError, match="equi-join"):
            session.explain(
                "SELECT L.joinKey, COUNT(*) FROM T, L "
                "WHERE T.corPred <= 5 GROUP BY L.joinKey"
            )

    def test_group_by_must_cover_select(self, session):
        with pytest.raises(SqlError, match="not in GROUP BY"):
            session.explain(
                "SELECT L.corPred, COUNT(*) FROM T, L "
                "WHERE T.joinKey = L.joinKey GROUP BY L.joinKey"
            )

    def test_aggregate_required(self, session):
        with pytest.raises(SqlError, match="aggregate"):
            session.explain(
                "SELECT L.joinKey FROM T, L "
                "WHERE T.joinKey = L.joinKey GROUP BY L.joinKey"
            )

    def test_unknown_udf(self, session):
        with pytest.raises(SqlError, match="unknown UDF"):
            session.explain(
                "SELECT mystery(L.groupByExtractCol), COUNT(*) FROM T, L "
                "WHERE T.joinKey = L.joinKey "
                "GROUP BY mystery(L.groupByExtractCol)"
            )

    def test_grouping_udf_must_be_hdfs_side(self, session):
        with pytest.raises(SqlError, match="JEN scan"):
            session.explain(
                "SELECT extract_group(T.dummy1), COUNT(*) FROM T, L "
                "WHERE T.joinKey = L.joinKey "
                "GROUP BY extract_group(T.dummy1)"
            )


class TestExecution:
    def test_matches_hand_built_query(self, session, paper_workload):
        reference = reference_join(
            paper_workload.t_table, paper_workload.l_table,
            build_paper_query(paper_workload),
        )
        result = session.execute(paper_sql(paper_workload),
                                 algorithm="zigzag")
        assert sorted(result.rows()) == sorted(reference.to_rows())
        assert result.table.schema.names == (
            "extract_group(L.groupByExtractCol)", "count",
        )

    @pytest.mark.parametrize("algorithm", [
        "db", "db(BF)", "repartition", "repartition(BF)", "broadcast",
    ])
    def test_all_algorithms_agree_via_sql(self, session, paper_workload,
                                          algorithm):
        zigzag = session.execute(paper_sql(paper_workload), "zigzag")
        other = session.execute(paper_sql(paper_workload), algorithm)
        assert sorted(other.rows()) == sorted(zigzag.rows())

    def test_auto_mode_picks_and_explains(self, session, paper_workload):
        result = session.execute(paper_sql(paper_workload))
        assert result.algorithm in (
            "zigzag", "repartition(BF)", "repartition", "db(BF)", "db",
            "broadcast",
        )
        assert result.advisor_rationale
        zigzag = session.execute(paper_sql(paper_workload), "zigzag")
        assert sorted(result.rows()) == sorted(zigzag.rows())

    def test_aliases_and_multiple_aggregates(self, session):
        result = session.execute("""
            SELECT L.joinKey AS uid, COUNT(*) AS views,
                   SUM(L.predAfterJoin) AS total,
                   MIN(T.predAfterJoin) AS first_day,
                   MAX(T.predAfterJoin) AS last_day
            FROM T, L
            WHERE T.joinKey = L.joinKey AND T.corPred <= 100000
            GROUP BY L.joinKey
        """, algorithm="repartition")
        assert result.table.schema.names == (
            "uid", "views", "total", "first_day", "last_day",
        )
        rows = result.rows()
        assert rows
        for _uid, views, _total, first_day, last_day in rows:
            assert views >= 1
            assert first_day <= last_day

    def test_avg_decomposition_correct(self, session, paper_workload,
                                       loaded_warehouse):
        result = session.execute("""
            SELECT L.joinKey, AVG(L.predAfterJoin) AS avg_day, COUNT(*)
            FROM T, L
            WHERE T.joinKey = L.joinKey
            GROUP BY L.joinKey
        """, algorithm="repartition")
        # Cross-check one group against a direct computation.
        t = paper_workload.t_table
        l_table = paper_workload.l_table
        uid, avg_day, count = result.rows()[0]
        t_hits = int((t.column("joinKey") == uid).sum())
        l_mask = l_table.column("joinKey") == uid
        expected_avg = float(l_table.column("predAfterJoin")[l_mask].mean())
        assert count == t_hits * int(l_mask.sum())
        assert avg_day == pytest.approx(expected_avg, rel=1e-9)

    def test_udf_predicate_in_where(self, loaded_warehouse):
        loaded_warehouse.udfs.register(
            "half", lambda value: int(value) // 2
        )
        session = SqlSession(loaded_warehouse)
        result = session.execute("""
            SELECT L.joinKey, COUNT(*) FROM T, L
            WHERE T.joinKey = L.joinKey AND half(L.indPred) <= 100
            GROUP BY L.joinKey
        """, algorithm="repartition")
        # half(indPred) <= 100  <=>  indPred <= 201
        direct = session.execute("""
            SELECT L.joinKey, COUNT(*) FROM T, L
            WHERE T.joinKey = L.joinKey AND L.indPred <= 201
            GROUP BY L.joinKey
        """, algorithm="repartition")
        assert sorted(result.rows()) == sorted(direct.rows())


class TestOrderByLimit:
    def test_order_by_alias_desc_with_limit(self, session):
        result = session.execute("""
            SELECT L.joinKey AS uid, COUNT(*) AS views
            FROM T, L WHERE T.joinKey = L.joinKey
            GROUP BY L.joinKey
            ORDER BY views DESC
            LIMIT 4
        """, algorithm="repartition")
        rows = result.rows()
        assert len(rows) == 4
        views = [row[1] for row in rows]
        assert views == sorted(views, reverse=True)

    def test_order_by_aggregate_expression(self, session):
        result = session.execute("""
            SELECT L.joinKey, COUNT(*) FROM T, L
            WHERE T.joinKey = L.joinKey
            GROUP BY L.joinKey
            ORDER BY COUNT(*) DESC
            LIMIT 2
        """, algorithm="repartition")
        counts = [row[1] for row in result.rows()]
        assert counts == sorted(counts, reverse=True)

    def test_order_by_group_column_ascending(self, session):
        result = session.execute("""
            SELECT L.joinKey, COUNT(*) FROM T, L
            WHERE T.joinKey = L.joinKey
            GROUP BY L.joinKey
            ORDER BY L.joinKey
        """, algorithm="repartition")
        keys = [row[0] for row in result.rows()]
        assert keys == sorted(keys)

    def test_order_by_string_column(self, session):
        result = session.execute("""
            SELECT extract_group(L.groupByExtractCol) AS prefix, COUNT(*)
            FROM T, L WHERE T.joinKey = L.joinKey
            GROUP BY extract_group(L.groupByExtractCol)
            ORDER BY prefix DESC
            LIMIT 3
        """, algorithm="repartition")
        prefixes = [row[0] for row in result.rows()]
        assert prefixes == sorted(prefixes, reverse=True)

    def test_order_by_unselected_expression_rejected(self, session):
        with pytest.raises(SqlError, match="ORDER BY"):
            session.explain("""
                SELECT L.joinKey, COUNT(*) FROM T, L
                WHERE T.joinKey = L.joinKey
                GROUP BY L.joinKey
                ORDER BY SUM(L.indPred)
            """)

    def test_limit_zero(self, session):
        result = session.execute("""
            SELECT L.joinKey, COUNT(*) FROM T, L
            WHERE T.joinKey = L.joinKey
            GROUP BY L.joinKey LIMIT 0
        """, algorithm="repartition")
        assert result.rows() == []


class TestExplainText:
    def test_paper_query_plan_rendering(self, session, paper_workload):
        text = session.explain_text(paper_sql(paper_workload))
        assert "HYBRID QUERY PLAN" in text
        assert "database side:  T" in text
        assert "HDFS side:      L" in text
        assert "equi-join:      joinKey = joinKey" in text
        assert "extract_group(groupByExtractCol)" in text
        assert "post-join:" in text

    def test_order_and_limit_rendered(self, session):
        text = session.explain_text("""
            SELECT L.joinKey, COUNT(*) FROM T, L
            WHERE T.joinKey = L.joinKey
            GROUP BY L.joinKey ORDER BY COUNT(*) DESC LIMIT 3
        """)
        assert "order by:       count DESC" in text
        assert "limit:          3" in text


class TestInListPredicates:
    def test_in_list_on_hdfs_side(self, session):
        result = session.execute("""
            SELECT L.joinKey, COUNT(*) FROM T, L
            WHERE T.joinKey = L.joinKey AND L.joinKey IN (1, 2, 5)
            GROUP BY L.joinKey
        """, algorithm="repartition")
        assert {row[0] for row in result.rows()} <= {1, 2, 5}

    def test_in_list_on_db_side_matches_range(self, session):
        in_list = session.execute("""
            SELECT L.joinKey, COUNT(*) FROM T, L
            WHERE T.joinKey = L.joinKey AND T.predAfterJoin IN (0, 1, 2)
            GROUP BY L.joinKey
        """, algorithm="repartition")
        as_range = session.execute("""
            SELECT L.joinKey, COUNT(*) FROM T, L
            WHERE T.joinKey = L.joinKey AND T.predAfterJoin <= 2
            GROUP BY L.joinKey
        """, algorithm="repartition")
        assert sorted(in_list.rows()) == sorted(as_range.rows())

    def test_in_list_requires_literals(self, session):
        with pytest.raises(SqlError, match="literals"):
            session.explain("""
                SELECT L.joinKey, COUNT(*) FROM T, L
                WHERE T.joinKey = L.joinKey AND L.joinKey IN (T.corPred)
                GROUP BY L.joinKey
            """)

    def test_in_list_single_column_only(self, session):
        with pytest.raises(SqlError, match="single column"):
            session.explain("""
                SELECT L.joinKey, COUNT(*) FROM T, L
                WHERE T.joinKey = L.joinKey
                  AND days(T.predAfterJoin) - days(L.predAfterJoin) IN (1)
                GROUP BY L.joinKey
            """)
