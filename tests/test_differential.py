"""Differential tests: the metamorphic config grid vs. the oracle.

Tier-1 runs the seeded 200+-cell :func:`repro.testkit.generator.
default_grid` — every algorithm, worker counts {1, 4, 30}, all HDFS
formats, kernels on/off, fault plans, cold/warm caches — with the
engine invariant hooks armed, asserting each cell's result equals the
single-node oracle's row multiset.  The ``slow``-marked wide sweep
(``pytest -m slow``) crosses the full matrix over extra seeds and is
the nightly fuzz entry point.

The remaining classes test the testkit itself: diff readability, each
invariant hook catching a seeded corruption, the shrinker reducing an
injected engine bug to a handful of rows, the fuzz driver's artifact
trail, and the join-index cache's verified collision-rebuild path.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.bloom import BloomFilter
from repro.edw.partitioner import agreed_hash_partition
from repro.errors import InvariantViolation
from repro.kernels.joinindex import JoinBuildIndex
from repro.kernels.partition import partition_table
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import table_from_rows
from repro.testkit import checking, fuzz, generator, oracle, shrink
from repro.testkit.generator import (
    ALL_ALGORITHMS,
    ConfigCell,
    WarehouseCache,
    default_grid,
    run_cell,
)

GRID = default_grid()
GRID_IDS = [
    f"{case.name}:{cell.label()}" for case, cell in GRID
]


@pytest.fixture(scope="module")
def warehouse_cache():
    """Shared loaded warehouses across all grid cells (read-only)."""
    return WarehouseCache()


def _int_table(values, name="k"):
    schema = Schema([Column(name, DataType.INT64)])
    return table_from_rows(schema, [(int(v),) for v in values])


# ----------------------------------------------------------------------
# The tier-1 grid
# ----------------------------------------------------------------------
class TestDefaultGrid:
    def test_grid_spans_at_least_200_cells(self):
        assert len(GRID) >= 200

    def test_grid_covers_every_metamorphic_axis(self):
        cells = [cell for _, cell in GRID]
        # The exact roster plus the sampled tier at rate 1.0 (full
        # sample == exact, so the oracle contract holds unchanged).
        assert {cell.algorithm for cell in cells} == \
            set(ALL_ALGORITHMS) | {"approx", "approx(BF)"}
        assert {cell.approx for cell in cells} == {None, 1.0}
        assert {cell.workers for cell in cells} >= {1, 4, 30}
        assert {cell.format_name for cell in cells} >= \
            {"parquet", "text", "orc"}
        assert {cell.kernels for cell in cells} == {True, False}
        assert any(cell.fault_spec for cell in cells)
        assert any(cell.cache_warm for cell in cells)
        case_names = {case.name for case, _ in GRID}
        assert {"empty-t-prime", "all-duplicate-keys", "zipf-skew",
                "empty-result", "wide-dtypes"} <= case_names

    @pytest.mark.parametrize(("case", "cell"), GRID, ids=GRID_IDS)
    def test_cell_matches_oracle(self, case, cell, warehouse_cache):
        with checking():
            result = run_cell(
                case, cell, warehouse=warehouse_cache.get(case, cell)
            )
        oracle.assert_equivalent(
            result, case.oracle_rows(), label=f"{case.name}:{cell.label()}"
        )


SHARED_POOL_GRID = generator.shared_pool_grid()


class TestSharedPoolGrid:
    """Concurrent streams on one shared pool stay oracle-equal.

    Each block runs its streams simultaneously (one thread each)
    against a single installed SharedProcessPool, so worker slots are
    stolen across queries mid-block; fault-armed streams crash and
    retry next to clean neighbours.  Every stream's result must still
    be the oracle's row multiset, and the pool must leak nothing.
    """

    def test_grid_covers_faults_and_priorities(self):
        names = [name for name, _ in SHARED_POOL_GRID]
        assert any(name.startswith("faults[") for name in names)
        streams = [s for _, block in SHARED_POOL_GRID for s in block]
        assert {s.priority for s in streams} >= {0, 1}
        assert len({s.tenant for s in streams}) >= 3

    @pytest.mark.parametrize(
        ("name", "streams"), SHARED_POOL_GRID,
        ids=[name for name, _ in SHARED_POOL_GRID])
    def test_every_stream_oracle_equal(self, name, streams):
        results = generator.run_shared_pool_block(streams)
        failures = []
        for stream in streams:
            diff = oracle.compare_tables(
                results[stream.label()], stream.case.oracle_rows(),
                label=f"{name}:{stream.label()}",
            )
            if diff is not None:
                failures.append(diff)
        assert not failures, "\n\n".join(failures)


@pytest.mark.slow
class TestWideSweep:
    """The full algorithms x axes cross over extra seeds (nightly)."""

    @pytest.mark.parametrize("seed", [2016, 2017, 2018])
    def test_wide_grid_matches_oracle(self, seed):
        cache = WarehouseCache()
        failures = []
        with checking():
            for case, cell in generator.wide_grid([seed]):
                result = run_cell(
                    case, cell, warehouse=cache.get(case, cell)
                )
                diff = oracle.compare_tables(
                    result, case.oracle_rows(),
                    label=f"{case.name}:{cell.label()}",
                )
                if diff is not None:
                    failures.append(diff)
        assert not failures, "\n\n".join(failures)


# ----------------------------------------------------------------------
# Oracle comparison helpers
# ----------------------------------------------------------------------
class TestOracleComparison:
    def test_equal_multisets_in_any_order(self):
        assert oracle.compare_tables(
            [(2, "b"), (1, "a"), (1, "a")],
            [(1, "a"), (2, "b"), (1, "a")],
        ) is None

    def test_diff_reports_first_divergence_and_multiplicity(self):
        diff = oracle.compare_tables(
            [(1, "a")],
            [(1, "a"), (2, "b"), (2, "b")],
            label="probe",
        )
        assert "probe: row multisets diverge (1 actual rows vs 3" in diff
        assert "first divergence at sorted row 1" in diff
        assert "missing from actual: 2 row(s)" in diff
        assert "(2, 'b') (x2)" in diff

    def test_diff_reports_extra_rows(self):
        diff = oracle.compare_tables([(9,), (1,)], [(1,)])
        assert "unexpected in actual: 1 row(s)" in diff
        assert "(9,)" in diff

    def test_schema_mismatch_reported_before_rows(self):
        left = _int_table([1], name="a")
        right = _int_table([1], name="b")
        diff = oracle.compare_tables(left, right)
        assert "column mismatch" in diff

    def test_assert_equivalent_raises_with_label(self):
        with pytest.raises(AssertionError, match="mycell"):
            oracle.assert_equivalent([(1,)], [(2,)], label="mycell")


# ----------------------------------------------------------------------
# Invariant hooks
# ----------------------------------------------------------------------
class TestInvariantHooks:
    def test_double_delivery_is_caught(self):
        counts = np.array([[1, 2]], dtype=np.int64)
        with checking(), pytest.raises(InvariantViolation,
                                       match="not exactly-once"):
            from repro.testkit import invariants
            invariants.check_shuffle_delivery([], [], counts)

    def test_partition_row_loss_is_caught(self):
        from repro.testkit import invariants

        table = _int_table(range(40))
        assignments = agreed_hash_partition(table.column("k"), 4)
        parts = partition_table(table, assignments, 4)
        parts[0] = parts[0].take(np.arange(max(parts[0].num_rows - 1, 0)))
        with checking(), pytest.raises(InvariantViolation,
                                       match="completeness"):
            invariants.check_hash_partition(
                table, "k", parts, 4, agreed_hash_partition
            )

    def test_misrouted_partition_row_is_caught(self):
        from repro.testkit import invariants

        table = _int_table(range(40))
        assignments = agreed_hash_partition(table.column("k"), 4)
        parts = partition_table(table, assignments, 4)
        parts[0], parts[1] = parts[1], parts[0]
        with checking(), pytest.raises(InvariantViolation,
                                       match="disjointness"):
            invariants.check_hash_partition(
                table, "k", parts, 4, agreed_hash_partition
            )

    def test_bloom_false_negative_is_caught(self):
        keys = np.arange(50, dtype=np.int64)
        with checking():
            bloom = BloomFilter(num_bits=1024)
            bloom.add(keys)
            bloom._words[:] = 0  # corrupt: silently lose every bit
            with pytest.raises(InvariantViolation,
                               match="false negative"):
                bloom.contains(keys)

    def test_bloom_shadow_survives_merge(self):
        keys = np.arange(30, dtype=np.int64)
        with checking():
            source = BloomFilter(num_bits=1024)
            source.add(keys)
            merged = BloomFilter(num_bits=1024)
            merged.union_in_place(source)
            merged._words[:] = 0
            with pytest.raises(InvariantViolation,
                               match="false negative"):
                merged.contains(keys)

    def test_spill_misalignment_is_caught(self):
        from repro.jen.spill import fragment_hash_partition
        from repro.testkit import invariants

        build = _int_table(range(60))
        probe = _int_table(range(60))
        assignment = fragment_hash_partition(build.column("k"), 3)
        build_parts = partition_table(build, assignment, 3)
        probe_parts = partition_table(probe, assignment, 3)
        fragments = list(zip(build_parts, reversed(probe_parts)))
        with checking(), pytest.raises(InvariantViolation,
                                       match="misalignment"):
            invariants.check_spill_fragments(
                build, probe, "k", "k", fragments, 3,
                fragment_hash_partition,
            )

    def test_hooks_are_inert_outside_checking(self):
        """Production pays one flag test; corrupt inputs never raise."""
        from repro.testkit import invariants

        counts = np.array([[7]], dtype=np.int64)
        invariants.check_shuffle_delivery([], [], counts)
        table = _int_table(range(10))
        invariants.check_hash_partition(
            table, "k", [], 4, agreed_hash_partition
        )

    def test_exactly_once_holds_under_message_duplication(self):
        """The fault injector re-sends and duplicates shuffle messages;
        the receiver's dedup must still accept each partition once."""
        case = generator.generate_data_case(seed=31, t_rows=400,
                                            l_rows=1_600)
        cell = ConfigCell(algorithm="repartition", workers=30,
                          fault_spec="drop:shuffle:0.05,dup:shuffle:0.2")
        with checking():
            result = run_cell(case, cell)
        oracle.assert_equivalent(result, case.oracle_rows(),
                                 label=cell.label())


# ----------------------------------------------------------------------
# Shrinker
# ----------------------------------------------------------------------
@pytest.fixture
def broken_probe(monkeypatch):
    """Inject a divergence: the probe kernel drops its last match pair.

    The oracle joins with a Python dict, so it is immune — exactly the
    kind of silent engine bug the shrinker exists for.
    """
    original = JoinBuildIndex.probe

    def dropping_probe(self, probe_keys):
        build_idx, probe_idx = original(self, probe_keys)
        return build_idx[:-1], probe_idx[:-1]

    monkeypatch.setattr(JoinBuildIndex, "probe", dropping_probe)


class TestShrinker:
    def test_passing_cell_returns_none(self):
        case = generator.generate_data_case(seed=3, t_rows=200, l_rows=800)
        assert shrink.shrink(case, ConfigCell(algorithm="zigzag"),
                             max_evaluations=5) is None

    def test_injected_divergence_shrinks_to_minimal_repro(
            self, broken_probe):
        case = generator.generate_data_case(seed=7, t_rows=300,
                                            l_rows=900)
        cell = ConfigCell(algorithm="zigzag", workers=30,
                          format_name="text", kernels=True)
        outcome = shrink.shrink(case, cell, max_evaluations=400)
        assert outcome is not None
        # The acceptance bar: a handful of rows, found automatically.
        assert 1 <= outcome.total_rows <= 10
        assert outcome.evaluations <= 400
        # The bug needs no non-default axis, so all were reduced away.
        assert outcome.reduced_axes() == []
        assert outcome.cell.workers == 4
        assert outcome.cell.format_name == "parquet"
        snippet = outcome.snippet()
        assert "generator.with_rows(" in snippet
        assert "generate_data_case(seed=7)" in snippet
        assert "run_cell" in snippet
        assert "row multisets diverge" in outcome.diff
        assert "shrunk" in outcome.report()

    def test_shrink_does_not_change_failure_kind(self, broken_probe):
        """A divergence must not 'shrink' into an unrelated crash (e.g.
        the empty-table loader error)."""
        case = generator.generate_data_case(seed=7, t_rows=300,
                                            l_rows=900)
        cell = ConfigCell(algorithm="zigzag", workers=30,
                          format_name="text", kernels=True)
        outcome = shrink.shrink(case, cell, max_evaluations=400)
        assert "row multisets diverge" in outcome.diff
        assert "raised" not in outcome.diff


# ----------------------------------------------------------------------
# Fuzz driver
# ----------------------------------------------------------------------
class TestFuzzDriver:
    def test_clean_run_reports_ok(self):
        report = fuzz.run_fuzz(seeds=[2015], cells_per_seed=5,
                               rows_scale=0.2)
        assert report.ok
        assert report.cells_run == 5
        assert "0 failure(s)" in report.render()

    def test_failures_are_shrunk_and_written_as_artifacts(
            self, broken_probe, tmp_path):
        report = fuzz.run_fuzz(
            seeds=[2015], cells_per_seed=12, rows_scale=0.2,
            artifact_dir=str(tmp_path), shrink_budget=120,
        )
        assert not report.ok
        assert report.artifact_paths
        record = json.loads(
            (tmp_path / sorted(p.name for p in tmp_path.glob("*.json"))[0])
            .read_text()
        )
        assert record["kind"] == "divergence"
        assert "generator." in record["provenance"]
        assert record["shrunk_rows"] <= 10
        assert "run_cell" in record["snippet"]
        snippets = list(tmp_path.glob("*.py"))
        assert snippets, "repro snippet artifact missing"

    def test_cli_exit_codes(self, broken_probe, capsys):
        from repro.__main__ import main

        code = main(["fuzz", "--seeds", "2015", "--cells-per-seed", "8",
                     "--rows-scale", "0.2", "--shrink-budget", "60"])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out


# ----------------------------------------------------------------------
# Join-index cache: verified collision rebuild (service/cache.py)
# ----------------------------------------------------------------------
class TestJoinIndexCacheCollision:
    def test_colliding_key_is_verified_and_rebuilt(self):
        from repro.service.cache import (
            CachingJoinIndexProvider,
            JoinIndexCache,
        )

        cache = JoinIndexCache(capacity=8)
        provider = CachingJoinIndexProvider(jen=None, cache=cache)
        provider.set_context("colliding-context")
        keys_a = np.array([5, 1, 3, 3], dtype=np.int64)
        first = provider(0, keys_a)
        assert provider(0, keys_a) is first  # verified hit
        hits_before = cache.hits.value

        # Same context key, different build side: matches() must reject
        # the stale entry and a fresh index must replace it.
        keys_b = np.array([2, 9], dtype=np.int64)
        rebuilt = provider(0, keys_b)
        assert rebuilt is not first
        assert rebuilt.matches(keys_b)
        build_idx, probe_idx = rebuilt.probe(
            np.array([9, 4, 2], dtype=np.int64)
        )
        assert keys_b[build_idx].tolist() == [9, 2]
        assert probe_idx.tolist() == [0, 2]
        # The rebuilt index was re-cached under the same key.
        assert provider(0, keys_b) is rebuilt
        assert cache.hits.value > hits_before

    def test_poisoned_cache_cannot_change_a_result(self):
        """End-to-end: pre-seed every worker slot with an index over the
        wrong keys; the engine-side verification must rebuild them all
        and the query must still match the oracle."""
        from repro.service.cache import (
            CachingJoinIndexProvider,
            JoinIndexCache,
        )

        case = generator.generate_data_case(seed=13, t_rows=400,
                                            l_rows=1_600)
        warehouse = generator.build_cell_warehouse(case, 4, "parquet")
        cache = JoinIndexCache(capacity=64)
        wrong = np.array([123456789], dtype=np.int64)
        for slot in range(warehouse.jen.num_workers):
            cache.put(f"poison|w{slot}", JoinBuildIndex(wrong))
        provider = CachingJoinIndexProvider(warehouse.jen, cache)
        provider.set_context("poison")
        provider.install()
        try:
            result = run_cell(
                case, ConfigCell(algorithm="zigzag"), warehouse=warehouse
            )
        finally:
            provider.uninstall()
        oracle.assert_equivalent(result, case.oracle_rows(),
                                 label="poisoned-cache")
