"""Corner coverage across smaller surfaces: AST display, plan helpers,
exchange edge cases, config copies, advisor branches."""

import numpy as np
import pytest

from repro.config import default_config
from repro.core.advisor import JoinAdvisor, WorkloadEstimate
from repro.errors import ExpressionError
from repro.jen.exchange import final_aggregate
from repro.query.plan import aggregate_row_width, empty_partial
from repro.relational.aggregates import AggregateSpec
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table
from repro.sql.ast import Aggregate, ColumnRef, FuncCall


class TestAstDisplay:
    def test_column_ref_display(self):
        assert ColumnRef("T", "joinKey").display() == "T.joinKey"
        assert ColumnRef(None, "joinKey").display() == "joinKey"

    def test_func_call_display(self):
        call = FuncCall("extract_group", ColumnRef("L", "col"))
        assert call.display() == "extract_group(L.col)"

    def test_aggregate_fields(self):
        aggregate = Aggregate("sum", ColumnRef(None, "v"), alias="total")
        assert aggregate.function == "sum"
        assert aggregate.alias == "total"


class TestPlanHelpers:
    def test_empty_partial_schema(self, paper_query, paper_workload):
        from repro.query.plan import apply_derivations

        t_schema = paper_workload.t_table.project(
            list(paper_query.db_projection)
        ).schema
        l_sample = apply_derivations(
            paper_workload.l_table.slice(0, 1).project(
                list(paper_query.hdfs_projection)
            ),
            paper_query,
        ).project(list(paper_query.hdfs_wire_columns()))
        partial = empty_partial(paper_query, t_schema, l_sample.schema)
        assert partial.num_rows == 0
        assert "count" in partial.schema.names

    def test_aggregate_row_width(self, paper_query, paper_workload,
                                 loaded_warehouse):
        from repro.query.plan import apply_derivations, local_join

        t = paper_workload.t_table.slice(0, 10).project(
            list(paper_query.db_projection)
        )
        l_rows = apply_derivations(
            paper_workload.l_table.slice(0, 10).project(
                list(paper_query.hdfs_projection)
            ),
            paper_query,
        ).project(list(paper_query.hdfs_wire_columns()))
        joined = local_join(t, l_rows, paper_query)
        width = aggregate_row_width(paper_query, joined.schema)
        # group column (24 bytes) + count (8 bytes).
        assert width == 24 + 8


class TestExchangeEdges:
    def test_final_aggregate_with_all_empty_partials(self, paper_query,
                                                     paper_workload):
        from repro.query.plan import apply_derivations, local_join, \
            local_partial_aggregate

        t_empty = paper_workload.t_table.slice(0, 0).project(
            list(paper_query.db_projection)
        )
        l_empty = apply_derivations(
            paper_workload.l_table.slice(0, 0).project(
                list(paper_query.hdfs_projection)
            ),
            paper_query,
        ).project(list(paper_query.hdfs_wire_columns()))
        partial = local_partial_aggregate(
            local_join(t_empty, l_empty, paper_query), paper_query
        )
        merged = final_aggregate([partial, partial, partial], paper_query)
        assert merged.num_rows == 0


class TestConfigCopies:
    def test_scaled_preserves_other_fields(self):
        config = default_config(scale=1 / 1000)
        rescaled = config.scaled(1 / 2000)
        assert rescaled.scale == 1 / 2000
        assert rescaled.cost == config.cost
        assert rescaled.bloom == config.bloom

    def test_trace_describe_includes_deps(self):
        from repro.sim.trace import Trace

        trace = Trace("demo")
        trace.add("a", "cpu", 1.0)
        trace.add("b", "cpu", 2.0, after=["a"])
        trace.add("c", "cpu", 2.0, streams_from=["b"])
        text = trace.describe()
        assert "after a" in text
        assert "streams b" in text


class TestAdvisorBranches:
    def test_text_format_changes_estimates(self):
        advisor = JoinAdvisor()
        base = dict(t_rows=1.6e9, l_rows=15e9, sigma_t=0.1, sigma_l=0.2,
                    s_t=0.2, s_l=0.1)
        parquet = advisor.estimate_all(WorkloadEstimate(**base))
        text = advisor.estimate_all(WorkloadEstimate(
            **base, format_name="text", l_scan_bytes=74.0,
        ))
        for name in parquet:
            assert text[name] >= parquet[name] - 1.0

    def test_broadcast_rationale(self):
        advisor = JoinAdvisor()
        decision = advisor.decide(WorkloadEstimate(
            t_rows=1.6e9, l_rows=15e9, sigma_t=0.0003, sigma_l=0.2,
            s_t=0.5, s_l=0.1,
        ))
        if decision.best == "broadcast":
            assert "broadcast" in decision.rationale.lower() or \
                "shuffle" in decision.rationale.lower()

    def test_repartition_rationale_fallback(self):
        advisor = JoinAdvisor()
        text = advisor._rationale(
            WorkloadEstimate(t_rows=1e9, l_rows=1e10, sigma_t=0.1,
                             sigma_l=0.2, s_t=0.2, s_l=0.1),
            "repartition",
        )
        assert "robust" in text


class TestJoinStatsEdges:
    def test_summary_formats_large_numbers(self):
        from repro.core.joins.base import JoinResult, JoinStats
        from repro.sim.replay import TimingResult
        from repro.sim.trace import Trace

        schema = Schema([Column("g", DataType.INT64),
                         Column("count", DataType.INT64)])
        table = Table(schema, {
            "g": np.array([1]), "count": np.array([7]),
        })
        result = JoinResult(
            algorithm="zigzag",
            result=table,
            stats=JoinStats(hdfs_tuples_shuffled=591e3,
                            db_tuples_sent=30e3),
            trace=Trace("t"),
            timing=TimingResult("t", 93.9, {}),
            scale_up=1000.0,
        )
        summary = result.summary()
        assert "zigzag" in summary and "93.9" in summary
        assert "591.0M" in summary.replace(" ", "")


class TestAggregateOutputTypes:
    def test_output_dtype_map(self):
        assert AggregateSpec("count").output_dtype() is DataType.INT64
        assert AggregateSpec("avg", "v").output_dtype() is DataType.FLOAT64
        assert AggregateSpec("min", "v").output_dtype() is DataType.INT64

    def test_invalid_function_message(self):
        with pytest.raises(ExpressionError, match="median"):
            AggregateSpec("median", "v")
