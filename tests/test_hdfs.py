"""Tests for the simulated HDFS: NameNode, DataNodes, filesystem."""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.errors import CatalogError, StorageError
from repro.hdfs.blocks import Block
from repro.hdfs.datanode import DataNode
from repro.hdfs.filesystem import HdfsFileSystem
from repro.hdfs.namenode import NameNode
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table


def small_cluster(nodes=6, block_size=4096):
    return ClusterConfig(
        hdfs_nodes=nodes,
        hdfs_block_size=block_size,
        hdfs_replication=2,
    )


def int_table(rows):
    schema = Schema([Column("a", DataType.INT64),
                     Column("b", DataType.INT32)])
    return Table(schema, {
        "a": np.arange(rows, dtype=np.int64),
        "b": np.arange(rows, dtype=np.int32),
    })


class TestNameNode:
    def test_allocate_and_lookup(self):
        namenode = NameNode(5, replication=2)
        blocks = namenode.allocate_blocks("/f", [10, 10, 4], 100.0)
        assert [b.num_rows for b in blocks] == [10, 10, 4]
        assert blocks[1].start_row == 10
        assert namenode.blocks("/f") == blocks
        assert namenode.exists("/f")

    def test_replication_distinct_nodes(self):
        namenode = NameNode(5, replication=3)
        blocks = namenode.allocate_blocks("/f", [1] * 20, 10.0)
        for block in blocks:
            assert len(set(block.replicas)) == 3

    def test_replicas_spread_over_cluster(self):
        namenode = NameNode(6, replication=2)
        blocks = namenode.allocate_blocks("/f", [1] * 60, 10.0)
        first_replicas = {block.replicas[0] for block in blocks}
        assert first_replicas == set(range(6))

    def test_duplicate_file_rejected(self):
        namenode = NameNode(3)
        namenode.allocate_blocks("/f", [1], 1.0)
        with pytest.raises(StorageError, match="already exists"):
            namenode.allocate_blocks("/f", [1], 1.0)

    def test_missing_file(self):
        with pytest.raises(StorageError, match="no such file"):
            NameNode(3).blocks("/ghost")

    def test_delete(self):
        namenode = NameNode(3)
        namenode.allocate_blocks("/f", [1], 1.0)
        namenode.delete("/f")
        assert not namenode.exists("/f")

    def test_impossible_replication(self):
        with pytest.raises(StorageError):
            NameNode(2, replication=3)


class TestBlocks:
    def test_validation(self):
        with pytest.raises(StorageError):
            Block(1, "/f", 0, 0, 0.0, (0,))
        with pytest.raises(StorageError):
            Block(1, "/f", 0, 5, 10.0, ())
        with pytest.raises(StorageError, match="replicated twice"):
            Block(1, "/f", 0, 5, 10.0, (2, 2))

    def test_end_row(self):
        block = Block(1, "/f", 10, 5, 10.0, (0,))
        assert block.end_row == 15


class TestDataNode:
    def test_store_and_read(self):
        node = DataNode(0)
        block = Block(7, "/f", 0, 3, 30.0, (0, 1))
        rows = int_table(3)
        node.store_replica(block, rows)
        assert node.has_replica(7)
        assert node.read_block(block).num_rows == 3
        assert node.stored_blocks() == 1

    def test_wrong_target_rejected(self):
        node = DataNode(5)
        block = Block(7, "/f", 0, 3, 30.0, (0, 1))
        with pytest.raises(StorageError, match="not a replica target"):
            node.store_replica(block, int_table(3))

    def test_row_count_mismatch(self):
        node = DataNode(0)
        block = Block(7, "/f", 0, 3, 30.0, (0,))
        with pytest.raises(StorageError, match="expects 3 rows"):
            node.store_replica(block, int_table(5))

    def test_missing_replica_read(self):
        node = DataNode(0)
        block = Block(7, "/f", 0, 3, 30.0, (0,))
        with pytest.raises(StorageError, match="no replica"):
            node.read_block(block)

    def test_evict(self):
        node = DataNode(0)
        block = Block(7, "/f", 0, 3, 30.0, (0,))
        node.store_replica(block, int_table(3))
        node.evict(7)
        assert not node.has_replica(7)


class TestFileSystem:
    def test_write_splits_into_blocks(self):
        fs = HdfsFileSystem(small_cluster(block_size=1024))
        table = int_table(2000)
        blocks = fs.write_table("t", "/t", table, "parquet")
        assert len(blocks) > 1
        assert sum(b.num_rows for b in blocks) == 2000

    def test_round_trip_all_rows(self):
        fs = HdfsFileSystem(small_cluster(block_size=1024))
        table = int_table(500)
        fs.write_table("t", "/t", table, "text")
        blocks = fs.table_blocks("t")
        combined = Table.concat([fs.read_block(b) for b in blocks])
        assert combined.to_rows() == table.to_rows()

    def test_catalog_metadata(self):
        fs = HdfsFileSystem(small_cluster())
        fs.write_table("t", "/t", int_table(10), "parquet")
        meta = fs.table_meta("t")
        assert meta.num_rows == 10
        assert meta.format_name == "parquet"
        assert meta.storage_format().supports_projection_pushdown

    def test_unknown_table(self):
        fs = HdfsFileSystem(small_cluster())
        with pytest.raises(CatalogError):
            fs.table_meta("ghost")

    def test_empty_table_rejected(self):
        fs = HdfsFileSystem(small_cluster())
        with pytest.raises(StorageError, match="empty table"):
            fs.write_table("t", "/t", int_table(0), "text")

    def test_duplicate_registration_rejected(self):
        fs = HdfsFileSystem(small_cluster())
        fs.write_table("t", "/t", int_table(10), "text")
        with pytest.raises(CatalogError):
            fs.write_table("t", "/t2", int_table(10), "text")

    def test_replicas_materialised_on_datanodes(self):
        fs = HdfsFileSystem(small_cluster(block_size=1024))
        fs.write_table("t", "/t", int_table(1000), "text")
        for block in fs.table_blocks("t"):
            for node_id in block.replicas:
                assert fs.datanodes[node_id].has_replica(block.block_id)

    def test_preferred_node_read(self):
        fs = HdfsFileSystem(small_cluster(block_size=1024))
        fs.write_table("t", "/t", int_table(100), "text")
        block = fs.table_blocks("t")[0]
        local = fs.read_block(block, preferred_node=block.replicas[1])
        assert local.num_rows == block.num_rows
