"""The skew plane: detection kernel, hybrid shuffle, work stealing.

Property tests for the count-min sketch + top-k detection kernel
(no false negatives above the threshold, bounded overestimation,
determinism), unit tests for the bounded-fan-out hybrid split and the
straggler steal planner, and the differential battery: every
shuffle-using algorithm on heavily skewed data, skew handling on and
off, with and without injected faults, must reproduce the oracle's row
multiset under armed invariants while the measured worker balance
improves.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import algorithm_by_name, testkit
from repro.core.advisor import JoinAdvisor, WorkloadEstimate
from repro.core.joins.costing import HYBRID_SHUFFLE_SKEW_CAP, JoinCosting
from repro.core.joins.repartition import _route_db_rows
from repro.config import HybridConfig
from repro.edw.partitioner import agreed_hash_partition
from repro.errors import InvariantViolation, SimulationError
from repro.faults import FaultPlan
from repro.jen.scheduler import plan_work_stealing
from repro.jen.worker import JenWorker
from repro.kernels.sketch import CountMinSketch, TopKHeap
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table
from repro.skew import (
    HeavyHitterDetector,
    HotKeySet,
    SkewPolicy,
    set_skew_handling_enabled,
    skew_handling_enabled,
)
from repro.testkit import generator, oracle
from repro.workload.generator import zipf_skew_factor
from tests.test_chaos import FAULT_SPECS

SHUFFLE_ALGORITHMS = generator.SHUFFLE_ALGORITHMS
#: Tier-1 fault representatives; the full grid is slow-marked.
SMOKE_FAULTS = ("crash-shuffle", "crash-scan", "combo")


def zipf_keys(rng, n, n_keys=200, skew=1.6):
    ranks = np.arange(1, n_keys + 1, dtype=np.float64)
    weights = ranks ** -skew
    return rng.choice(n_keys, size=n, p=weights / weights.sum()) \
        .astype(np.int64)


# ----------------------------------------------------------------------
# Count-min sketch + top-k kernel
# ----------------------------------------------------------------------
class TestCountMinSketch:
    def test_never_underestimates(self):
        rng = np.random.default_rng(5)
        keys = zipf_keys(rng, 20_000)
        sketch = CountMinSketch(width=512, depth=4, seed=11)
        for block in np.array_split(keys, 13):
            unique, counts = np.unique(block, return_counts=True)
            sketch.add(unique, counts)
        exact_keys, exact_counts = np.unique(keys, return_counts=True)
        estimates = sketch.estimate(exact_keys)
        assert (estimates >= exact_counts).all()
        assert sketch.total == keys.size

    def test_overestimation_bounded(self):
        # Standard CMS bound: overestimate <= e*N/width with high
        # probability per row; depth=4 takes the min over rows.  The
        # data and seed are fixed, so the generous 3*N/width bound is
        # deterministic here.
        rng = np.random.default_rng(6)
        keys = zipf_keys(rng, 30_000)
        sketch = CountMinSketch(width=1024, depth=4, seed=11)
        sketch.add(keys)
        exact_keys, exact_counts = np.unique(keys, return_counts=True)
        over = sketch.estimate(exact_keys) - exact_counts
        assert (over >= 0).all()
        assert over.max() <= 3.0 * keys.size / 1024

    def test_deterministic(self):
        keys = zipf_keys(np.random.default_rng(7), 5_000)
        a = CountMinSketch(width=256, depth=3, seed=11)
        b = CountMinSketch(width=256, depth=3, seed=11)
        a.add(keys)
        # Same multiset in a different batch order: identical state.
        for block in np.array_split(keys[::-1], 7):
            b.add(block)
        probe = np.unique(keys)
        assert np.array_equal(a.estimate(probe), b.estimate(probe))

    def test_exact_on_sparse_streams(self):
        # Far fewer distinct keys than cells: the min over 4 rows is
        # collision-free, so estimates agree with exact counts.
        rng = np.random.default_rng(8)
        keys = rng.integers(0, 40, size=10_000).astype(np.int64)
        sketch = CountMinSketch(width=4096, depth=4, seed=11)
        sketch.add(keys)
        exact_keys, exact_counts = np.unique(keys, return_counts=True)
        assert np.array_equal(sketch.estimate(exact_keys), exact_counts)

    def test_rejects_bad_geometry(self):
        with pytest.raises(SimulationError):
            CountMinSketch(width=0, depth=4)
        with pytest.raises(SimulationError):
            CountMinSketch(width=64, depth=0)


class TestTopKHeap:
    def test_caps_and_sorts(self):
        heap = TopKHeap(3)
        heap.offer(np.array([10, 20, 30, 40], dtype=np.int64),
                   np.array([5, 40, 15, 25], dtype=np.int64))
        heap.prune(0)
        kept = heap.keys()
        assert kept.tolist() == sorted(kept.tolist())
        assert len(kept) == 3
        assert 10 not in kept  # smallest estimate evicted

    def test_keeps_max_estimate_per_key(self):
        heap = TopKHeap(8)
        heap.offer(np.array([7], dtype=np.int64),
                   np.array([10], dtype=np.int64))
        heap.offer(np.array([7], dtype=np.int64),
                   np.array([4], dtype=np.int64))
        assert dict(heap.items())[7] == 10

    def test_prune_floor(self):
        heap = TopKHeap(8)
        heap.offer(np.array([1, 2, 3], dtype=np.int64),
                   np.array([2, 9, 30], dtype=np.int64))
        heap.prune(10)
        assert heap.keys().tolist() == [3]


# ----------------------------------------------------------------------
# Heavy-hitter detector
# ----------------------------------------------------------------------
class TestHeavyHitterDetector:
    def _observe_blocks(self, detector, keys, blocks=11):
        for block in np.array_split(keys, blocks):
            detector.observe(block)

    def test_no_false_negatives_above_threshold(self):
        rng = np.random.default_rng(9)
        keys = zipf_keys(rng, 25_000, skew=1.8)
        detector = HeavyHitterDetector(num_workers=8)
        self._observe_blocks(detector, keys)
        exact_keys, exact_counts = np.unique(keys, return_counts=True)
        threshold = detector.threshold()
        truly_hot = exact_keys[exact_counts >= threshold]
        assert truly_hot.size > 0  # the workload really is skewed
        assert np.isin(truly_hot, detector.hot_keys()).all()

    def test_agrees_with_exact_counts_when_sparse(self):
        # Few distinct keys + default 1024x4 sketch: detection is the
        # exact frequency cut, no over- or under-selection.
        rng = np.random.default_rng(10)
        keys = zipf_keys(rng, 12_000, n_keys=64, skew=1.5)
        detector = HeavyHitterDetector(num_workers=6)
        self._observe_blocks(detector, keys)
        exact_keys, exact_counts = np.unique(keys, return_counts=True)
        expected = exact_keys[exact_counts >= detector.threshold()]
        assert np.array_equal(detector.hot_keys(), np.sort(expected))

    def test_deterministic(self):
        keys = zipf_keys(np.random.default_rng(11), 9_000)
        first = HeavyHitterDetector(num_workers=4)
        second = HeavyHitterDetector(num_workers=4)
        self._observe_blocks(first, keys, blocks=5)
        self._observe_blocks(second, keys, blocks=5)
        assert np.array_equal(first.hot_keys(), second.hot_keys())

    def test_uniform_stream_detects_nothing(self):
        rng = np.random.default_rng(12)
        keys = rng.integers(0, 500, size=20_000).astype(np.int64)
        detector = HeavyHitterDetector(num_workers=8)
        self._observe_blocks(detector, keys)
        assert detector.hot_keys().size == 0
        assert detector.hot_key_set() is None

    def test_hot_key_set_fanouts_bounded(self):
        rng = np.random.default_rng(13)
        keys = zipf_keys(rng, 25_000, skew=1.8)
        detector = HeavyHitterDetector(num_workers=8)
        self._observe_blocks(detector, keys)
        hot = detector.hot_key_set()
        assert hot is not None and len(hot) > 0
        assert (hot.fanouts >= 2).all()
        assert (hot.fanouts <= 8).all()
        # The hottest key needs the widest spread.
        estimates = detector.sketch.estimate(hot.keys)
        assert hot.fanouts[np.argmax(estimates)] == hot.fanouts.max()


# ----------------------------------------------------------------------
# Hybrid split + probe routing (data plane)
# ----------------------------------------------------------------------
def _key_table(keys):
    keys = np.asarray(keys, dtype=np.int64)
    schema = Schema([Column("k", DataType.INT64),
                     Column("v", DataType.INT32)])
    return Table(schema, {
        "k": keys,
        "v": np.arange(keys.size, dtype=np.int32),
    })


class TestHybridRouting:
    def test_build_side_spread_is_contained_and_conserved(self):
        rng = np.random.default_rng(14)
        keys = np.concatenate([
            np.full(300, 42, dtype=np.int64),
            rng.integers(0, 1000, size=200).astype(np.int64),
        ])
        table = _key_table(keys)
        hot = HotKeySet(keys=np.array([42], dtype=np.int64),
                        fanouts=np.array([3], dtype=np.int64))
        with testkit.checking():  # invariants armed: containment etc.
            parts, hot_rows = JenWorker.partition_for_hybrid_shuffle(
                table, "k", 6, hot, sender_offset=2
            )
        assert hot_rows == 300
        home = int(agreed_hash_partition(
            np.array([42], dtype=np.int64), 6)[0])
        spread_set = {home, (home + 1) % 6, (home + 2) % 6}
        for index, part in enumerate(parts):
            count = int((part.column("k") == 42).sum())
            if index in spread_set:
                assert count == 100  # 300 rows dealt evenly over 3
            else:
                assert count == 0

    def test_probe_side_duplicates_to_spread_set_only(self):
        rng = np.random.default_rng(15)
        keys = np.concatenate([
            np.full(40, 42, dtype=np.int64),
            rng.integers(0, 1000, size=100).astype(np.int64),
        ])
        parts_in = [_key_table(keys[:70]), _key_table(keys[70:])]
        hot = HotKeySet(keys=np.array([42], dtype=np.int64),
                        fanouts=np.array([3], dtype=np.int64))
        with testkit.checking():
            dests, hot_tuples, copy_tuples = _route_db_rows(
                parts_in, "k", 6, hot_keys=hot
            )
        assert hot_tuples == 40
        assert copy_tuples == 120  # fan-out 3 copies of each hot row
        total_delivered = sum(t.num_rows for t in dests)
        assert total_delivered == keys.size + 2 * 40

    def test_invariant_catches_lost_hot_copy(self):
        keys = np.full(10, 7, dtype=np.int64)
        table = _key_table(keys)
        hot_keys = np.array([7], dtype=np.int64)
        fanouts = np.array([2], dtype=np.int64)
        home = int(agreed_hash_partition(hot_keys, 4)[0])
        # Deliver the hot rows to the home worker only: the spread
        # partner's copy is missing.
        empty = table.slice(0, 0)
        dests = [empty, empty, empty, empty]
        dests[home] = table
        with testkit.checking():
            with pytest.raises(InvariantViolation):
                testkit.invariants.check_broadcast_routing(
                    [table], "k", dests, 4, agreed_hash_partition,
                    hot_keys, fanouts=fanouts,
                )

    def test_off_path_identical_without_hot_keys(self):
        rng = np.random.default_rng(16)
        keys = rng.integers(0, 100, size=500).astype(np.int64)
        parts_in = [_key_table(keys)]
        dests, hot_tuples, copy_tuples = _route_db_rows(
            parts_in, "k", 4, hot_keys=None
        )
        assert (hot_tuples, copy_tuples) == (0, 0)
        assert sum(t.num_rows for t in dests) == keys.size


# ----------------------------------------------------------------------
# Work-stealing planner
# ----------------------------------------------------------------------
class TestWorkStealing:
    def test_balanced_loads_are_left_alone(self):
        plan = plan_work_stealing([100, 105, 95, 102])
        assert not plan.has_moves()
        assert plan.pre_balance == plan.post_balance

    def test_straggler_surplus_moves(self):
        plan = plan_work_stealing([1000, 100, 100, 100], threshold=1.25)
        assert plan.has_moves()
        assert plan.fragments[0] > 1
        assert plan.post_balance < plan.pre_balance
        # Non-stragglers never donate their own work.
        for slot in (1, 2, 3):
            assert plan.fragments[slot] == 1
            assert plan.assignments[(slot, 0)] == slot

    def test_below_threshold_is_identity(self):
        plan = plan_work_stealing([120, 100, 100, 100], threshold=1.25)
        assert not plan.has_moves()

    def test_deterministic(self):
        loads = [900, 50, 200, 50, 700, 50]
        first = plan_work_stealing(loads)
        second = plan_work_stealing(loads)
        assert first.assignments == second.assignments

    def test_degenerate_inputs(self):
        assert not plan_work_stealing([500]).has_moves()
        assert not plan_work_stealing([]).has_moves()
        assert not plan_work_stealing([0, 0, 0]).has_moves()


# ----------------------------------------------------------------------
# Costing + advisor: the hybrid shuffle caps the skew multiplier
# ----------------------------------------------------------------------
class TestSkewCosting:
    def setup_method(self):
        self.costing = JoinCosting(HybridConfig().scaled(1.0))

    def test_hash_only_pays_configured_skew(self):
        assert self.costing.effective_shuffle_skew(4.0) == 4.0

    def test_hybrid_caps_at_constant_without_measurement(self):
        assert self.costing.effective_shuffle_skew(4.0, hybrid=True) \
            == HYBRID_SHUFFLE_SKEW_CAP

    def test_hybrid_caps_at_measured_balance(self):
        assert self.costing.effective_shuffle_skew(
            4.0, hybrid=True, measured=1.2) == pytest.approx(1.2)
        # A run whose detection missed pays what it measured...
        assert self.costing.effective_shuffle_skew(
            4.0, hybrid=True, measured=3.1) == pytest.approx(3.1)
        # ...but never more than the configured analytic factor.
        assert self.costing.effective_shuffle_skew(
            2.0, hybrid=True, measured=3.1) == pytest.approx(2.0)

    def test_transfer_phases_scale_with_volume(self):
        assert self.costing.work_steal_seconds(1e6, 32.0) > 0
        assert self.costing.jen_duplicate_seconds(2e6, 32.0) == \
            pytest.approx(2 * self.costing.jen_duplicate_seconds(1e6, 32.0))

    def test_advisor_discounts_repartition_when_skew_handled(self):
        config = dataclasses.replace(HybridConfig(), shuffle_skew=5.0)
        advisor = JoinAdvisor(config)
        # Selective on T, not on L: the HDFS shuffle/build path is the
        # critical path, so the skew multiplier shows in the estimate.
        est = WorkloadEstimate(
            t_rows=2e8, l_rows=15e9, sigma_t=0.1, sigma_l=0.8,
            s_t=0.2, s_l=0.1,
        )
        skewed = advisor.estimate_all(est)
        previous = set_skew_handling_enabled(True)
        try:
            handled = advisor.estimate_all(est)
        finally:
            set_skew_handling_enabled(previous)
        for name in ("repartition", "repartition(BF)", "zigzag"):
            assert handled[name] < skewed[name]
        # Algorithms without an L' shuffle are untouched.
        assert handled["broadcast"] == pytest.approx(skewed["broadcast"])
        assert handled["db"] == pytest.approx(skewed["db"])


# ----------------------------------------------------------------------
# Toggle + generator plumbing
# ----------------------------------------------------------------------
class TestSkewPlumbing:
    def test_toggle_returns_previous(self):
        assert not skew_handling_enabled()
        assert set_skew_handling_enabled(True) is False
        try:
            assert skew_handling_enabled()
        finally:
            assert set_skew_handling_enabled(False) is True
        assert not skew_handling_enabled()

    def test_run_cell_restores_toggle(self):
        case = generator.skewed_case(1.8)
        cell = generator.ConfigCell("repartition", workers=4,
                                    skew_handling=True)
        assert "skew" in cell.label()
        generator.run_cell(case, cell)
        assert not skew_handling_enabled()

    def test_default_grid_sweeps_the_skew_axis(self):
        grid = generator.default_grid()
        skew_cells = [
            (case, cell) for case, cell in grid if cell.skew_handling
        ]
        assert {cell.algorithm for _, cell in skew_cells} == \
            set(SHUFFLE_ALGORITHMS)
        assert {case.name for case, _ in skew_cells} == {"skew1.8"}
        faulted = {cell.fault_spec for _, cell in skew_cells
                   if cell.fault_spec}
        assert faulted == set(generator.FAULT_AXIS)

    def test_shrinker_resets_skew_axis(self):
        from repro.testkit.shrink import _AXIS_DEFAULTS

        assert ("skew_handling", False) in _AXIS_DEFAULTS

    def test_policy_fraction_default(self):
        policy = SkewPolicy()
        assert policy.fraction_for(8) == pytest.approx(1 / 16)
        assert SkewPolicy(hot_fraction=0.2).fraction_for(8) == 0.2


# ----------------------------------------------------------------------
# Differential battery on skewed workloads
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def hot_case():
    return generator.skewed_case(1.8)


@pytest.fixture(scope="module")
def hot_reference(hot_case):
    return hot_case.oracle_rows()


class TestSkewDifferential:
    @pytest.mark.parametrize("skew_handling", [False, True])
    @pytest.mark.parametrize("algorithm", SHUFFLE_ALGORITHMS)
    def test_oracle_equal_under_invariants(self, hot_case, hot_reference,
                                           algorithm, skew_handling):
        cell = generator.ConfigCell(algorithm, workers=4,
                                    skew_handling=skew_handling)
        with testkit.checking():
            result = generator.run_cell(hot_case, cell)
        assert oracle.canonical_rows(result) == hot_reference

    def test_hybrid_improves_worker_balance(self, hot_case):
        warehouse = generator.build_cell_warehouse(hot_case, 30,
                                                   "parquet")
        warehouse.config = dataclasses.replace(
            warehouse.config,
            shuffle_skew=zipf_skew_factor(1.8, 64, 30),
        )
        spreads = {}
        for skew_handling in (False, True):
            previous = set_skew_handling_enabled(skew_handling)
            try:
                result = algorithm_by_name("repartition").run(
                    warehouse, hot_case.query
                )
            finally:
                set_skew_handling_enabled(previous)
            loads = np.asarray(
                result.trace.metadata["join_slot_loads"], dtype=float
            )
            spreads[skew_handling] = (
                np.percentile(loads, 99) / max(np.percentile(loads, 50), 1)
            )
            if skew_handling:
                assert result.stats.hot_keys_detected > 0
                assert result.stats.hot_tuples_rerouted > 0
        # The acceptance bar: hybrid cuts p99/p50 spread at least 2x.
        assert spreads[True] <= spreads[False] / 2.0

    def test_detection_is_single_pass(self, hot_case):
        # The scan stats must not change when detection rides along:
        # the sketch feeds on the same per-block stream, no second scan.
        warehouse = generator.build_cell_warehouse(hot_case, 4, "parquet")
        baseline = algorithm_by_name("repartition").run(
            warehouse, hot_case.query
        )
        previous = set_skew_handling_enabled(True)
        try:
            detected = algorithm_by_name("repartition").run(
                warehouse, hot_case.query
            )
        finally:
            set_skew_handling_enabled(previous)
        assert detected.stats.hdfs_rows_scanned == \
            baseline.stats.hdfs_rows_scanned
        assert detected.stats.hot_keys_detected > 0


# ----------------------------------------------------------------------
# Fault interaction: the skew plane under the chaos battery
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def skew_chaos_warehouse(hot_case):
    return generator.build_cell_warehouse(hot_case, 30, "parquet")


@pytest.fixture(scope="module")
def skew_baselines(skew_chaos_warehouse, hot_case):
    """Fault-free skew-handling runs, for exactly-once accounting."""
    baselines = {}
    previous = set_skew_handling_enabled(True)
    try:
        for name in SHUFFLE_ALGORITHMS:
            baselines[name] = algorithm_by_name(name).run(
                skew_chaos_warehouse, hot_case.query
            )
    finally:
        set_skew_handling_enabled(previous)
    return baselines


def run_skewed_with_faults(warehouse, query, algorithm, spec):
    previous = set_skew_handling_enabled(True)
    warehouse.arm_faults(FaultPlan.from_spec(spec))
    try:
        return algorithm_by_name(algorithm).run(warehouse, query)
    finally:
        warehouse.disarm_faults()
        set_skew_handling_enabled(previous)


def check_skew_differential(result, baseline, reference_rows):
    assert oracle.canonical_rows(result.result) == reference_rows
    # Exactly-once accounting survives recovery with the hybrid split.
    assert result.stats.hdfs_rows_scanned == \
        baseline.stats.hdfs_rows_scanned
    assert result.total_seconds >= baseline.total_seconds - 1e-9


class TestSkewChaosSmoke:
    @pytest.mark.parametrize("fault", SMOKE_FAULTS)
    @pytest.mark.parametrize("algorithm", ["repartition", "zigzag"])
    def test_differential(self, skew_chaos_warehouse, hot_case,
                          hot_reference, skew_baselines, algorithm,
                          fault):
        result = run_skewed_with_faults(
            skew_chaos_warehouse, hot_case.query, algorithm,
            FAULT_SPECS[fault],
        )
        check_skew_differential(result, skew_baselines[algorithm],
                                hot_reference)

    def test_crash_mid_hybrid_shuffle(self, skew_chaos_warehouse,
                                      hot_case, hot_reference,
                                      skew_baselines):
        """A worker dies while the hybrid shuffle is in flight: the
        survivor re-produces its rows, the hot split re-plans over the
        remaining workers, and the result is still the oracle's."""
        result = run_skewed_with_faults(
            skew_chaos_warehouse, hot_case.query, "repartition",
            FAULT_SPECS["crash-shuffle"],
        )
        assert result.stats.hot_keys_detected > 0
        assert result.stats.hot_tuples_rerouted > 0
        check_skew_differential(result, skew_baselines["repartition"],
                                hot_reference)


@pytest.mark.slow
class TestSkewChaosFullGrid:
    @pytest.mark.parametrize("fault", sorted(FAULT_SPECS))
    @pytest.mark.parametrize("algorithm", SHUFFLE_ALGORITHMS)
    def test_differential(self, skew_chaos_warehouse, hot_case,
                          hot_reference, skew_baselines, algorithm,
                          fault):
        result = run_skewed_with_faults(
            skew_chaos_warehouse, hot_case.query, algorithm,
            FAULT_SPECS[fault],
        )
        check_skew_differential(result, skew_baselines[algorithm],
                                hot_reference)

    @pytest.mark.parametrize("key_skew", [1.2, 1.8])
    def test_moderate_and_heavy_skew_grids(self, key_skew):
        case = generator.skewed_case(key_skew)
        reference = case.oracle_rows()
        for algorithm in SHUFFLE_ALGORITHMS:
            for skew_handling in (False, True):
                cell = generator.ConfigCell(
                    algorithm, workers=30, skew_handling=skew_handling,
                )
                with testkit.checking():
                    result = generator.run_cell(case, cell)
                assert oracle.canonical_rows(result) == reference
