"""Timing-shape tests: the qualitative claims of the paper's figures,
asserted against the simulated execution times.

Absolute seconds are simulator output; these tests pin down *orderings*
and *trends* — who wins where — which is what the reproduction claims.
"""

import pytest

from repro import algorithm_by_name
from repro.bench.harness import WarehouseCache


@pytest.fixture(scope="module")
def cache():
    return WarehouseCache(scale=1.0 / 50_000.0)


def seconds(cache, name, sigma_t, sigma_l, s_t=None, s_l=None,
            format_name="parquet"):
    setup = cache.setup(sigma_t, sigma_l, s_t=s_t, s_l=s_l,
                        format_name=format_name)
    return algorithm_by_name(name).run(
        setup.warehouse, setup.query
    ).total_seconds


class TestFig8Shape:
    def test_zigzag_is_fastest_repartition_slowest(self, cache):
        zigzag = seconds(cache, "zigzag", 0.1, 0.4, s_t=0.2, s_l=0.1)
        bloomed = seconds(cache, "repartition(BF)", 0.1, 0.4,
                          s_t=0.2, s_l=0.1)
        plain = seconds(cache, "repartition", 0.1, 0.4, s_t=0.2, s_l=0.1)
        assert zigzag < bloomed <= plain

    def test_zigzag_speedup_in_paper_band(self, cache):
        """Paper: zigzag up to 2.1x vs repartition, 1.8x vs
        repartition(BF)."""
        zigzag = seconds(cache, "zigzag", 0.1, 0.4, s_t=0.2, s_l=0.1)
        bloomed = seconds(cache, "repartition(BF)", 0.1, 0.4,
                          s_t=0.2, s_l=0.1)
        plain = seconds(cache, "repartition", 0.1, 0.4, s_t=0.2, s_l=0.1)
        assert 1.5 <= plain / zigzag <= 3.0
        assert 1.3 <= bloomed / zigzag <= 2.5


class TestFig10Shape:
    def test_broadcast_wins_only_for_tiny_t_prime(self, cache):
        at_0001 = (
            seconds(cache, "broadcast", 0.001, 0.2, s_l=0.1),
            seconds(cache, "repartition", 0.001, 0.2, s_l=0.1),
        )
        at_001 = (
            seconds(cache, "broadcast", 0.01, 0.2, s_l=0.1),
            seconds(cache, "repartition", 0.01, 0.2, s_l=0.1),
        )
        assert at_0001[0] < at_0001[1]          # wins at sigma_T=0.001
        assert at_001[0] > 2.0 * at_001[1]      # loses hard at 0.01


class TestFig11Shape:
    def test_bloom_benefit_grows_with_sigma_l(self, cache):
        gain_small = (seconds(cache, "db", 0.1, 0.01, s_l=0.1)
                      / seconds(cache, "db(BF)", 0.1, 0.01, s_l=0.1))
        gain_large = (seconds(cache, "db", 0.1, 0.2, s_l=0.1)
                      / seconds(cache, "db(BF)", 0.1, 0.2, s_l=0.1))
        assert gain_large > gain_small
        assert gain_large > 2.0

    def test_bloom_overhead_visible_at_tiny_sigma_l(self, cache):
        plain = seconds(cache, "db", 0.1, 0.001, s_l=0.1)
        bloomed = seconds(cache, "db(BF)", 0.1, 0.001, s_l=0.1)
        assert bloomed >= plain - 1.0


class TestFig12Fig13Crossover:
    def test_db_side_wins_at_selective_sigma_l(self, cache):
        assert seconds(cache, "db", 0.1, 0.001, s_l=0.1) < \
            seconds(cache, "repartition", 0.1, 0.001, s_l=0.1)
        assert seconds(cache, "db(BF)", 0.1, 0.001, s_l=0.1) < \
            seconds(cache, "zigzag", 0.1, 0.001, s_l=0.1)

    def test_db_side_deteriorates_steeply(self, cache):
        db_small = seconds(cache, "db", 0.1, 0.001, s_l=0.1)
        db_large = seconds(cache, "db", 0.1, 0.2, s_l=0.1)
        zigzag_small = seconds(cache, "zigzag", 0.1, 0.001, s_l=0.1)
        zigzag_large = seconds(cache, "zigzag", 0.1, 0.2, s_l=0.1)
        assert db_large / db_small > 5.0            # steep
        assert zigzag_large / zigzag_small < 1.6    # nearly flat

    def test_hdfs_side_wins_at_common_sigma_l(self, cache):
        assert seconds(cache, "zigzag", 0.1, 0.2, s_l=0.1) < \
            seconds(cache, "db(BF)", 0.1, 0.2, s_l=0.1)


class TestFig14Fig15Formats:
    def test_parquet_much_faster_than_text(self, cache):
        text = seconds(cache, "zigzag", 0.1, 0.1, s_l=0.1,
                       format_name="text")
        parquet = seconds(cache, "zigzag", 0.1, 0.1, s_l=0.1)
        assert text > 2.0 * parquet

    def test_bloom_gain_smaller_on_text(self, cache):
        gain_parquet = (
            seconds(cache, "repartition", 0.1, 0.4, s_t=0.2, s_l=0.1)
            / seconds(cache, "repartition(BF)", 0.1, 0.4, s_t=0.2, s_l=0.1)
        )
        gain_text = (
            seconds(cache, "repartition", 0.1, 0.4, s_t=0.2, s_l=0.1,
                    format_name="text")
            / seconds(cache, "repartition(BF)", 0.1, 0.4, s_t=0.2, s_l=0.1,
                      format_name="text")
        )
        assert gain_text <= gain_parquet + 0.05

    def test_zigzag_still_best_on_text(self, cache):
        zigzag = seconds(cache, "zigzag", 0.2, 0.4, s_t=0.2, s_l=0.2,
                         format_name="text")
        bloomed = seconds(cache, "repartition(BF)", 0.2, 0.4,
                          s_t=0.2, s_l=0.2, format_name="text")
        assert zigzag <= bloomed + 2.0


class TestTraceStructure:
    def test_zigzag_bf_barrier_respected(self, cache):
        """The second DB access cannot start before BF_H was merged and
        sent — the defining barrier of the zigzag join."""
        setup = cache.setup(0.1, 0.4, s_t=0.2, s_l=0.1)
        result = algorithm_by_name("zigzag").run(
            setup.warehouse, setup.query
        )
        timing = result.timing
        assert timing.phase("bf_h_merge").start >= \
            timing.phase("hdfs_scan").end - 1e-6
        assert timing.phase("db_second_access").start >= \
            timing.phase("bf_h_send").end - 1e-6

    def test_shuffle_overlaps_scan(self, cache):
        """JEN interleaves the shuffle with the scan (Section 4.4)."""
        setup = cache.setup(0.1, 0.4, s_t=0.2, s_l=0.1)
        result = algorithm_by_name("repartition").run(
            setup.warehouse, setup.query
        )
        timing = result.timing
        scan = timing.phase("hdfs_scan")
        shuffle = timing.phase("jen_shuffle")
        assert shuffle.start < scan.end  # genuinely overlapped

    def test_makespan_less_than_total_work(self, cache):
        """Pipelining must buy real time on every HDFS-side algorithm."""
        setup = cache.setup(0.1, 0.4, s_t=0.2, s_l=0.1)
        for name in ("repartition", "repartition(BF)", "zigzag"):
            result = algorithm_by_name(name).run(
                setup.warehouse, setup.query
            )
            assert result.total_seconds < \
                result.trace.total_work_seconds()

    def test_simulated_time_independent_of_data_scale(self):
        """The same paper-scale experiment simulated from two different
        data-plane scales gives nearly identical times."""
        coarse = WarehouseCache(scale=1.0 / 50_000.0)
        fine = WarehouseCache(scale=1.0 / 20_000.0)
        a = seconds(coarse, "zigzag", 0.1, 0.4, s_t=0.2, s_l=0.1)
        b = seconds(fine, "zigzag", 0.1, 0.4, s_t=0.2, s_l=0.1)
        assert a == pytest.approx(b, rel=0.08)
