"""Unit tests for the cost layer — the calibration regression net.

These pin the paper's hard anchors (scan times) and the structural
behaviour of every pricing function, so a cost-model change that would
silently move the calibration gets caught here before the figure-level
shape checks.
"""

import pytest

from repro.config import default_config
from repro.core.joins.costing import JoinCosting


@pytest.fixture(scope="module")
def costing():
    # Scale 1.0: feed paper-scale volumes directly.
    return JoinCosting(default_config(scale=1.0))


TB = 1e12
GB = 1e9


class TestPaperAnchors:
    def test_text_scan_of_1tb_is_about_240s(self, costing):
        seconds = costing.hdfs_scan_seconds(1.1e12, 15e9, "text")
        assert seconds == pytest.approx(240, rel=0.15)

    def test_parquet_projected_scan_is_about_38s(self, costing):
        # The paper reads the needed fields of the Parquet table in ~38 s;
        # our projected+compressed volume for the benchmark query is
        # ~310 GB.
        seconds = costing.hdfs_scan_seconds(310e9, 15e9, "parquet")
        assert seconds == pytest.approx(45, rel=0.25)

    def test_bloom_filter_is_16mb(self, costing):
        assert costing.bloom_bytes() == 16 * 1024 * 1024

    def test_bf_multicast_sub_second(self, costing):
        assert costing.bloom_to_jen_seconds() < 1.0

    def test_bf_return_path_seconds(self, costing):
        # 30 copies through the designated worker's 1 Gbit NIC: ~3.7 s.
        assert 2.0 < costing.bloom_to_db_seconds() < 6.0
        assert 2.0 < costing.bloom_merge_intra_jen_seconds() < 6.0


class TestScanPricing:
    def test_orc_rate_used(self, costing):
        parquet = costing.hdfs_scan_seconds(100e9, 1e9, "parquet")
        orc = costing.hdfs_scan_seconds(100e9, 1e9, "orc")
        assert orc > parquet  # slightly slower decode

    def test_unknown_format_falls_back_to_text(self, costing):
        unknown = costing.hdfs_scan_seconds(100e9, 1e9, "avro")
        text = costing.hdfs_scan_seconds(100e9, 1e9, "text")
        assert unknown == text

    def test_remote_fraction_slows_scan(self, costing):
        local = costing.hdfs_scan_seconds(300e9, 1e9, "parquet")
        remote = costing.hdfs_scan_seconds(300e9, 1e9, "parquet",
                                           remote_fraction=1.0)
        assert remote > local

    def test_cpu_bound_scan(self, costing):
        # Tiny bytes, huge row count: the process thread dominates.
        io_bound = costing.hdfs_scan_seconds(1e9, 1e6, "parquet")
        cpu_bound = costing.hdfs_scan_seconds(1e9, 100e9, "parquet")
        assert cpu_bound > io_bound


class TestDatabasePricing:
    def test_index_fast_path_only_when_selective(self, costing):
        full = costing.db_table_scan_seconds(97e9)
        indexed_selective = costing.db_table_scan_seconds(
            97e9, raw_matched_rows=1.6e6, index_available=True
        )
        indexed_unselective = costing.db_table_scan_seconds(
            97e9, raw_matched_rows=800e6, index_available=True
        )
        assert indexed_selective < full
        assert indexed_unselective == full  # optimizer keeps the scan

    def test_no_index_means_scan(self, costing):
        assert costing.db_table_scan_seconds(
            97e9, raw_matched_rows=1.0, index_available=False
        ) == costing.db_table_scan_seconds(97e9)

    def test_export_dominated_by_tuple_rate(self, costing):
        # 165 M tuples at 32 k/s/worker over 30 workers: ~172 s.
        seconds = costing.db_export_seconds(165e6, 16.0)
        assert seconds == pytest.approx(165e6 / (30 * 0.032e6), rel=0.01)

    def test_export_copies_cost_half_each(self, costing):
        once = costing.db_export_seconds(1e6, 16.0, copies=1)
        thirty = costing.db_export_seconds(1e6, 16.0, copies=30)
        assert thirty == pytest.approx(once * (1 + 29 * 0.5), rel=0.05)

    def test_ingest_slower_than_export_volume_for_volume(self, costing):
        # Same tuple count: ingest at 150 k/s/worker beats export at
        # 32 k/s/worker (the asymmetry is per-direction UDF cost).
        assert costing.db_ingest_seconds(100e6, 32.0) < \
            costing.db_export_seconds(100e6, 32.0)

    def test_second_access_much_cheaper_than_export(self, costing):
        assert costing.db_second_access_seconds(165e6) < \
            0.05 * costing.db_export_seconds(165e6, 16.0)


class TestJenPricing:
    def test_shuffle_skew_multiplies(self, costing):
        base = costing.jen_shuffle_seconds(591e6, 32.0)
        skewed = costing.jen_shuffle_seconds(591e6, 32.0, skew=2.0)
        assert skewed == pytest.approx(2.0 * base, rel=1e-6)
        # Sub-1 skews never speed things up.
        assert costing.jen_shuffle_seconds(591e6, 32.0, skew=0.5) == base

    def test_build_full_copy_does_not_parallelise(self, costing):
        shared = costing.hash_build_seconds(30e6)
        full = costing.hash_build_seconds(30e6, per_worker_full_copy=True)
        assert full == pytest.approx(30 * shared, rel=1e-6)

    def test_spill_prices_write_plus_read(self, costing):
        one_pass = costing.jen_spill_seconds(1e9, 32.0)
        # 1 B tuples * 32 B * 2 passes over 30 workers at 200 MB/s.
        expected = 1e9 * 32 * 2 / (30 * 200 * 1024 * 1024)
        assert one_pass == pytest.approx(expected, rel=1e-6)

    def test_probe_scales_with_output(self, costing):
        small = costing.probe_seconds(1e6, 1e6)
        large = costing.probe_seconds(1e6, 1e9)
        assert large > 100 * small


class TestScaleUp:
    def test_volumes_rescale_linearly(self):
        paper = JoinCosting(default_config(scale=1.0))
        reduced = JoinCosting(default_config(scale=1e-4))
        assert reduced.jen_shuffle_seconds(591e2, 32.0) == pytest.approx(
            paper.jen_shuffle_seconds(591e6, 32.0), rel=1e-9
        )
        assert reduced.db_export_seconds(165e2, 16.0) == pytest.approx(
            paper.db_export_seconds(165e6, 16.0), rel=1e-9
        )
