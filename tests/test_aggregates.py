"""Unit and property tests for repro.relational.aggregates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExpressionError, TableError
from repro.relational.aggregates import (
    AggregateSpec,
    group_by_aggregate,
    merge_partial_aggregates,
)
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table


def kv_table(keys, values):
    schema = Schema([Column("k", DataType.INT64),
                     Column("v", DataType.INT64)])
    return Table(schema, {
        "k": np.array(keys, dtype=np.int64),
        "v": np.array(values, dtype=np.int64),
    })


class TestAggregateSpec:
    def test_unknown_function(self):
        with pytest.raises(ExpressionError, match="unsupported"):
            AggregateSpec("median", "v")

    def test_non_count_requires_column(self):
        with pytest.raises(ExpressionError, match="requires a column"):
            AggregateSpec("sum")

    def test_output_names(self):
        assert AggregateSpec("count").output_name() == "count"
        assert AggregateSpec("sum", "v").output_name() == "sum_v"
        assert AggregateSpec("min", "v", alias="lo").output_name() == "lo"


class TestGroupBy:
    def test_count_sum_min_max(self):
        table = kv_table([1, 2, 2, 3, 2], [10, 5, 7, 1, 3])
        out = group_by_aggregate(table, ["k"], [
            AggregateSpec("count"),
            AggregateSpec("sum", "v"),
            AggregateSpec("min", "v"),
            AggregateSpec("max", "v"),
        ])
        assert out.to_rows() == [
            (1, 1, 10, 10, 10),
            (2, 3, 15, 3, 7),
            (3, 1, 1, 1, 1),
        ]

    def test_avg(self):
        table = kv_table([1, 1, 2], [4, 6, 7])
        out = group_by_aggregate(table, ["k"], [AggregateSpec("avg", "v")])
        assert out.column("avg_v").tolist() == [5.0, 7.0]

    def test_empty_input(self):
        table = kv_table([], [])
        out = group_by_aggregate(table, ["k"], [
            AggregateSpec("count"), AggregateSpec("min", "v"),
        ])
        assert out.num_rows == 0
        assert out.schema.names == ("k", "count", "min_v")

    def test_multi_column_grouping(self):
        schema = Schema([Column("a", DataType.INT32),
                         Column("b", DataType.INT32)])
        table = Table(schema, {
            "a": np.array([1, 1, 2, 1]),
            "b": np.array([1, 2, 1, 1]),
        })
        out = group_by_aggregate(table, ["a", "b"], [AggregateSpec("count")])
        assert out.num_rows == 3
        assert out.column("count").sum() == 4

    def test_requires_group_columns(self):
        with pytest.raises(TableError):
            group_by_aggregate(kv_table([1], [1]), [], [])

    def test_unknown_aggregate_column(self):
        with pytest.raises(Exception):
            group_by_aggregate(
                kv_table([1], [1]), ["k"], [AggregateSpec("sum", "nope")]
            )

    def test_dict_string_group_column(self):
        schema = Schema([Column("s", DataType.DICT_STRING)])
        table = Table(
            schema,
            {"s": np.array([0, 1, 0], dtype=np.int32)},
            {"s": np.array(["x", "y"], dtype=object)},
        )
        out = group_by_aggregate(table, ["s"], [AggregateSpec("count")])
        assert out.to_rows() == [("x", 2), ("y", 1)]


class TestMergePartials:
    def test_merge_equals_global(self):
        table = kv_table([1, 2, 2, 3, 2, 1], [1, 2, 3, 4, 5, 6])
        aggregates = [
            AggregateSpec("count"),
            AggregateSpec("sum", "v"),
            AggregateSpec("min", "v"),
            AggregateSpec("max", "v"),
        ]
        whole = group_by_aggregate(table, ["k"], aggregates)
        partials = [
            group_by_aggregate(part, ["k"], aggregates)
            for part in table.split(3)
        ]
        merged = merge_partial_aggregates(partials, ["k"], aggregates)
        assert merged.to_rows() == whole.to_rows()

    def test_avg_rejected(self):
        table = kv_table([1], [1])
        partial = group_by_aggregate(table, ["k"], [AggregateSpec("count")])
        with pytest.raises(ExpressionError, match="avg"):
            merge_partial_aggregates(
                [partial], ["k"], [AggregateSpec("avg", "v")]
            )

    @given(st.lists(
        st.tuples(st.integers(0, 5), st.integers(-100, 100)),
        min_size=1, max_size=100,
    ), st.integers(2, 6))
    @settings(max_examples=50, deadline=None)
    def test_merge_invariant_under_any_split(self, rows, parts):
        keys = [r[0] for r in rows]
        values = [r[1] for r in rows]
        table = kv_table(keys, values)
        aggregates = [
            AggregateSpec("count"), AggregateSpec("sum", "v"),
            AggregateSpec("min", "v"), AggregateSpec("max", "v"),
        ]
        whole = group_by_aggregate(table, ["k"], aggregates)
        partials = [
            group_by_aggregate(part, ["k"], aggregates)
            for part in table.split(parts)
        ]
        merged = merge_partial_aggregates(partials, ["k"], aggregates)
        assert merged.to_rows() == whole.to_rows()
