"""Tests for the query layer: HybridQuery, plan steps, stats, executor."""

import pytest

from repro.errors import ExpressionError
from repro.query.executor import reference_join
from repro.query.plan import (
    local_join,
    local_partial_aggregate,
    merge_partials,
)
from repro.query.query import DerivedColumn, HybridQuery
from repro.query.stats import measure_selectivities, predicate_selectivity
from repro.relational.expressions import compare


class TestHybridQueryValidation:
    def base_kwargs(self):
        return dict(
            db_table="T", hdfs_table="L",
            db_join_key="joinKey", hdfs_join_key="joinKey",
            db_projection=("joinKey",),
            hdfs_projection=("joinKey",),
            group_by=("l_joinKey",),
        )

    def test_valid(self):
        query = HybridQuery(**self.base_kwargs())
        assert query.prefixed_db_key() == "t_joinKey"
        assert query.prefixed_hdfs_key() == "l_joinKey"

    def test_join_key_must_be_projected(self):
        kwargs = self.base_kwargs()
        kwargs["db_projection"] = ("other",)
        with pytest.raises(ExpressionError, match="join key"):
            HybridQuery(**kwargs)

    def test_group_by_required(self):
        kwargs = self.base_kwargs()
        kwargs["group_by"] = ()
        with pytest.raises(ExpressionError, match="group_by"):
            HybridQuery(**kwargs)

    def test_prefixes_must_differ(self):
        kwargs = self.base_kwargs()
        kwargs["db_prefix"] = kwargs["hdfs_prefix"] = "x_"
        with pytest.raises(ExpressionError, match="prefixes"):
            HybridQuery(**kwargs)

    def test_wire_columns_drop_consumed_sources(self, paper_query):
        wire = paper_query.hdfs_wire_columns()
        assert "urlPrefix" in wire
        assert "groupByExtractCol" not in wire
        assert "joinKey" in wire


class TestSelectivityMeasurement:
    def test_workload_hits_spec(self, paper_workload, paper_query):
        report = measure_selectivities(
            paper_workload.t_table, paper_workload.l_table, paper_query
        )
        spec = paper_workload.spec
        assert report.sigma_t == pytest.approx(spec.sigma_t, rel=0.06)
        assert report.sigma_l == pytest.approx(spec.sigma_l, rel=0.06)
        assert report.s_t == pytest.approx(spec.s_t, rel=0.08)
        assert report.s_l == pytest.approx(spec.s_l, rel=0.08)

    def test_describe_contains_values(self, paper_workload, paper_query):
        report = measure_selectivities(
            paper_workload.t_table, paper_workload.l_table, paper_query
        )
        text = report.describe()
        assert "sigma_T" in text and "S_L'" in text

    def test_predicate_selectivity(self, small_table):
        assert predicate_selectivity(
            small_table, compare("k", "<=", 2)
        ) == pytest.approx(3 / 5)

    def test_empty_table(self, small_table):
        empty = small_table.slice(0, 0)
        assert predicate_selectivity(empty, compare("k", "<=", 2)) == 0.0


class TestPlanSteps:
    def test_local_join_prefixes(self, paper_workload, paper_query):
        t = paper_workload.t_table.slice(0, 200).project(
            list(paper_query.db_projection)
        )
        l_rows = paper_workload.l_table.slice(0, 200).project(
            list(paper_query.hdfs_projection)
        )
        from repro.query.plan import apply_derivations
        l_wire = apply_derivations(l_rows, paper_query).project(
            list(paper_query.hdfs_wire_columns())
        )
        joined = local_join(t, l_wire, paper_query)
        assert "t_joinKey" in joined.schema.names
        assert "l_joinKey" in joined.schema.names
        assert (joined.column("t_joinKey")
                == joined.column("l_joinKey")).all()

    def test_partials_merge_to_reference(self, paper_workload, paper_query):
        """Splitting the joined table arbitrarily and merging the partial
        aggregates reproduces the single-node result."""
        reference = reference_join(
            paper_workload.t_table, paper_workload.l_table, paper_query
        )
        from repro.query.plan import apply_derivations
        t = paper_workload.t_table.filter(
            paper_query.db_predicate.evaluate(paper_workload.t_table)
        ).project(list(paper_query.db_projection))
        l_rows = paper_workload.l_table.filter(
            paper_query.hdfs_predicate.evaluate(paper_workload.l_table)
        ).project(list(paper_query.hdfs_projection))
        l_wire = apply_derivations(l_rows, paper_query).project(
            list(paper_query.hdfs_wire_columns())
        )
        joined = local_join(t, l_wire, paper_query)
        partials = [
            local_partial_aggregate(part, paper_query)
            for part in joined.split(7)
        ]
        merged = merge_partials(partials, paper_query)
        assert merged.to_rows() == reference.to_rows()


class TestReferenceExecutor:
    def test_reference_groups_and_counts(self, paper_workload, paper_query):
        result = reference_join(
            paper_workload.t_table, paper_workload.l_table, paper_query
        )
        assert result.num_rows > 0
        assert result.schema.names == ("l_urlPrefix", "count")
        assert int(result.column("count").min()) >= 1

    def test_post_join_predicate_reduces_count(self, paper_workload,
                                               paper_query):
        from dataclasses import replace
        without_date = replace(paper_query, post_join_predicate=None)
        with_date = reference_join(
            paper_workload.t_table, paper_workload.l_table, paper_query
        )
        without = reference_join(
            paper_workload.t_table, paper_workload.l_table, without_date
        )
        assert int(with_date.column("count").sum()) < \
            int(without.column("count").sum())


class TestDerivedColumn:
    def test_requires_dict_string(self, paper_workload):
        derived = DerivedColumn("x", "joinKey", "udf", lambda s: s)
        with pytest.raises(ExpressionError, match="dict-string"):
            derived.apply(paper_workload.l_table)
