"""Tests for in-database pre-joins (star-schema support, paper §2)."""

import numpy as np
import pytest

from repro import algorithm_by_name, reference_join
from repro.errors import CatalogError
from repro.relational.expressions import compare
from repro.relational.operators import join_tables
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table
from tests.conftest import build_test_warehouse


NUM_PRODUCTS = 200


def product_dimension():
    """A small dimension table living in the database."""
    schema = Schema([
        Column("product_id", DataType.INT32),
        Column("category", DataType.INT32),
    ])
    return Table(schema, {
        "product_id": np.arange(NUM_PRODUCTS, dtype=np.int32),
        "category": (np.arange(NUM_PRODUCTS) % 10).astype(np.int32),
    })


def fact_table(paper_workload):
    """The generated T with a product_id foreign key appended."""
    t = paper_workload.t_table
    product_ids = (t.column("dummy2") % NUM_PRODUCTS).astype(np.int32)
    return t.with_column(Column("product_id", DataType.INT32), product_ids)


def _reference_star_join(fact, dimension):
    """Single-node fact-dimension join keeping one key copy."""
    joined = join_tables(
        build=dimension.rename({"product_id": "__rhs"}),
        probe=fact,
        build_key="__rhs", probe_key="product_id",
    )
    return joined.project([
        name for name in joined.schema.names if name != "__rhs"
    ])


@pytest.fixture()
def star_warehouse(paper_workload):
    warehouse = build_test_warehouse(paper_workload)
    # The generated T is already loaded as "T"; load the starred fact and
    # the dimension alongside it.
    warehouse.load_db_table("F", fact_table(paper_workload),
                            distribute_on="uniqKey")
    warehouse.load_db_table("P", product_dimension(),
                            distribute_on="product_id")
    return warehouse


class TestJoinLocal:
    def test_prejoin_matches_single_node(self, star_warehouse,
                                         paper_workload):
        meta, stats = star_warehouse.database.join_local(
            "F", "P", "product_id", "product_id",
            result_name="F_enriched",
            right_predicate=compare("category", "<=", 2),
            left_projection=["joinKey", "predAfterJoin", "product_id"],
            right_projection=["category"],
        )
        fact = fact_table(paper_workload)
        dimension = product_dimension()
        expected = _reference_star_join(
            fact.project(["joinKey", "predAfterJoin", "product_id"]),
            dimension.filter(
                compare("category", "<=", 2).evaluate(dimension)
            ),
        )
        assert meta.num_rows == expected.num_rows
        assert stats.result_rows == expected.num_rows
        gathered = star_warehouse.gather_db_table("F_enriched")
        assert sorted(gathered.to_rows()) == sorted(expected.to_rows())

    def test_duplicate_result_name(self, star_warehouse):
        star_warehouse.database.join_local(
            "F", "P", "product_id", "product_id", result_name="X",
            left_projection=["joinKey"], right_projection=["category"],
        )
        with pytest.raises(CatalogError, match="already exists"):
            star_warehouse.database.join_local(
                "F", "P", "product_id", "product_id", result_name="X",
                left_projection=["joinKey"],
                right_projection=["category"],
            )

    def test_key_appended_to_projection(self, star_warehouse):
        meta, _stats = star_warehouse.database.join_local(
            "F", "P", "product_id", "product_id",
            result_name="keyless",
            left_projection=["joinKey"],       # no product_id given
            right_projection=["category"],
        )
        assert meta.schema.has_column("product_id")

    def test_register_partitioned_table_validates(self, star_warehouse):
        with pytest.raises(CatalogError, match="partitions"):
            star_warehouse.database.register_partitioned_table(
                "bad", [], distribute_on="x"
            )


class TestStarHybridJoin:
    def test_hybrid_join_over_derived_fact(self, star_warehouse,
                                           paper_workload, paper_query):
        """Pre-join F with P in the database, then run the hybrid join
        against the click log — and cross-check against a single-node
        computation of the whole three-table query."""
        database = star_warehouse.database
        database.join_local(
            "F", "P", "product_id", "product_id",
            result_name="F2",
            right_predicate=compare("category", "<=", 2),
            left_projection=["joinKey", "predAfterJoin", "corPred",
                             "indPred"],
            right_projection=["category"],
        )
        from dataclasses import replace
        query = replace(paper_query, db_table="F2")
        result = algorithm_by_name("zigzag").run(star_warehouse, query)

        # Single-node three-table reference.
        fact = fact_table(paper_workload)
        dimension = product_dimension()
        enriched = _reference_star_join(
            fact.project(
                ["joinKey", "predAfterJoin", "corPred", "indPred",
                 "product_id"]
            ),
            dimension.filter(
                compare("category", "<=", 2).evaluate(dimension)
            ),
        )
        reference = reference_join(
            enriched, paper_workload.l_table, query
        )
        assert result.result.to_rows() == reference.to_rows()

    def test_all_algorithms_agree_on_star(self, star_warehouse,
                                          paper_query):
        database = star_warehouse.database
        database.join_local(
            "F", "P", "product_id", "product_id",
            result_name="F3",
            right_predicate=compare("category", "==", 4),
            left_projection=["joinKey", "predAfterJoin", "corPred",
                             "indPred"],
            right_projection=[],
        )
        from dataclasses import replace
        query = replace(paper_query, db_table="F3")
        baseline = None
        for name in ("zigzag", "repartition(BF)", "db(BF)", "broadcast"):
            rows = algorithm_by_name(name).run(
                star_warehouse, query
            ).result.to_rows()
            if baseline is None:
                baseline = rows
            assert rows == baseline, name
