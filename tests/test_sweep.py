"""Tests for the generic sweep API and its CLI subcommand."""

import pytest

from repro.bench.harness import WarehouseCache
from repro.bench.sweep import SweepPoint, grid, run_sweep
from repro.errors import ReproError


@pytest.fixture(scope="module")
def cache():
    return WarehouseCache(scale=1 / 100_000)


class TestSweep:
    def test_grid_cartesian(self):
        points = grid([0.05, 0.1], [0.01, 0.1, 0.2])
        assert len(points) == 6
        assert points[0].sigma_t == 0.05 and points[0].sigma_l == 0.01

    def test_rows_and_winners(self, cache):
        result = run_sweep(
            grid([0.1], [0.01, 0.2]),
            ["db(BF)", "zigzag"],
            cache=cache,
        )
        assert len(result.rows) == 4
        winners = result.winners()
        assert len(winners) == 2
        assert set(winners.values()) <= {"db(BF)", "zigzag"}
        # The paper's crossover: db wins small sigma_L, zigzag large.
        labels = sorted(winners)
        small = [l for l in labels if "sL=0.01" in l][0]
        large = [l for l in labels if "sL=0.2" in l][0]
        assert winners[small] == "db(BF)"
        assert winners[large] == "zigzag"

    def test_seconds_lookup(self, cache):
        result = run_sweep(
            [SweepPoint(0.1, 0.1, s_l=0.1)], ["zigzag"], cache=cache
        )
        label = result.rows[0]["point"]
        assert result.seconds(label, "zigzag") > 0
        with pytest.raises(ReproError):
            result.seconds(label, "broadcast")

    def test_infeasible_points_skipped(self, cache):
        result = run_sweep(
            [SweepPoint(0.9, 0.9, s_t=0.05, s_l=0.05)],
            ["zigzag"],
            cache=cache,
        )
        assert not result.rows
        assert len(result.skipped) == 1

    def test_empty_inputs_rejected(self, cache):
        with pytest.raises(ReproError):
            run_sweep([], ["zigzag"], cache=cache)
        with pytest.raises(ReproError):
            run_sweep([SweepPoint(0.1, 0.1)], [], cache=cache)

    def test_point_label(self):
        point = SweepPoint(0.1, 0.2, s_t=0.3, s_l=0.1,
                           format_name="text")
        label = point.label()
        assert "sT=0.1" in label and "text" in label


class TestSweepCli:
    def test_cli_runs(self, capsys):
        from repro.__main__ import main

        code = main([
            "sweep", "--sigma-t", "0.1", "--sigma-l", "0.01", "0.2",
            "--algorithms", "zigzag", "db(BF)",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "winners by point" in out
        assert "zigzag" in out
