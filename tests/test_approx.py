"""The approximate tier: sampler, estimators, statistical contract.

The heart of this file is the seeded coverage battery: across hundreds
of independent seeded runs at a 95% confidence target, the exact
answer must fall inside the reported interval at a rate whose Wilson
binomial lower bound stays at or above 0.90.  The acceptance rule
itself is statistical machinery from :mod:`repro.testkit.statcheck`,
tested here too, with a known (and tiny) false-failure probability —
every seed is fixed, so the suite is fully deterministic.

Around the battery: property tests for the stratified block sampler,
the hardcoded t-table, exactness of full-rate runs on every aggregate
kind, monotone progressive refinement terminating at the exact answer,
empty-join semantics aligned with the oracle, and the degraded service
tier (overload sheds to approximate execution instead of rejecting,
with the exact tier untouched).
"""

from __future__ import annotations

import math

import pytest

from repro.approx import (
    ApproxJoin,
    ApproxPolicy,
    plan_block_sample,
    t_critical,
)
from repro.approx.sampler import _primary_node
from repro.errors import JoinError, ServiceError
from repro.faults import FaultPlan
from repro.service import QueryService, ServiceConfig
from repro.service.admission import AdmissionConfig
from repro.testkit import generator, oracle
from repro.testkit.oracle import oracle_aggregate_cells
from repro.testkit.statcheck import (
    CoverageTracker,
    binomial_cdf,
    check_coverage,
    wilson_lower_bound,
)

#: The battery's sampling rate: enough blocks for the closed-form
#: intervals to be in their working regime (see the battery's docstring).
BATTERY_RATE = 0.5
BATTERY_SEEDS = range(1, 81)


@pytest.fixture(scope="module")
def kind_fixtures():
    """(case, warehouse, exact cells) per approximable aggregate kind."""
    fixtures = {}
    for kind in ("count", "sum", "avg"):
        case = generator.approx_case(kind)
        warehouse = generator.build_cell_warehouse(case, 4, "parquet")
        cells = oracle_aggregate_cells(
            case.t_table, case.l_table, case.query)
        fixtures[kind] = (case, warehouse, cells)
    return fixtures


# ----------------------------------------------------------------------
# Block sampler
# ----------------------------------------------------------------------
class TestBlockSampler:
    def _blocks(self, kind_fixtures):
        case, warehouse, _ = kind_fixtures["count"]
        return warehouse.hdfs.table_blocks(case.query.hdfs_table)

    def test_target_size_formula(self, kind_fixtures):
        blocks = self._blocks(kind_fixtures)
        total = len(blocks)
        assert plan_block_sample(blocks, 0.25, seed=1).target_blocks == \
            max(1, math.ceil(0.25 * total))
        assert plan_block_sample(blocks, 1.0, seed=1).target_blocks == total
        # min_blocks floors the target; tiny tables clamp at the total.
        assert plan_block_sample(
            blocks, 0.01, seed=1, min_blocks=4).target_blocks == 4
        assert plan_block_sample(
            blocks, 0.01, seed=1, min_blocks=10 * total
        ).target_blocks == total

    def test_ordering_is_a_permutation(self, kind_fixtures):
        blocks = self._blocks(kind_fixtures)
        sample = plan_block_sample(blocks, 0.3, seed=3)
        assert sorted(b.block_id for b in sample.ordering) == \
            sorted(b.block_id for b in blocks)

    def test_deterministic_in_seed(self, kind_fixtures):
        blocks = self._blocks(kind_fixtures)
        first = plan_block_sample(blocks, 0.3, seed=5)
        second = plan_block_sample(blocks, 0.3, seed=5)
        assert [b.block_id for b in first.ordering] == \
            [b.block_id for b in second.ordering]
        other = plan_block_sample(blocks, 0.3, seed=6)
        assert [b.block_id for b in other.ordering] != \
            [b.block_id for b in first.ordering]

    def test_prefixes_stay_stratified(self, kind_fixtures):
        """Any prefix holds a near-proportional share of every stratum."""
        blocks = self._blocks(kind_fixtures)
        sample = plan_block_sample(blocks, 0.5, seed=2)
        strata = {_primary_node(b) for b in blocks}
        per_stratum_total = {
            node: sum(1 for b in blocks if _primary_node(b) == node)
            for node in strata
        }
        for prefix_len in range(1, len(blocks) + 1):
            prefix = sample.ordering[:prefix_len]
            for node in strata:
                got = sum(1 for b in prefix if _primary_node(b) == node)
                expected = prefix_len * per_stratum_total[node] / len(blocks)
                assert abs(got - expected) <= 1.0


# ----------------------------------------------------------------------
# t-table
# ----------------------------------------------------------------------
class TestTCritical:
    def test_known_values(self):
        assert t_critical(0.95, math.inf) == pytest.approx(1.960)
        # Any finite dof rounds down to a tabulated entry — huge ones
        # land on the 120 row, never on the normal limit.
        assert t_critical(0.95, 10**9) == pytest.approx(1.980)
        assert t_critical(0.95, 1) == pytest.approx(12.706)
        assert t_critical(0.90, 10) == pytest.approx(1.812)
        assert t_critical(0.99, 2) == pytest.approx(9.925)

    def test_rounding_is_conservative(self):
        # dof rounds down to a tabulated entry (wider interval) ...
        assert t_critical(0.95, 35) == t_critical(0.95, 30)
        assert t_critical(0.95, 35) > t_critical(0.95, 40)
        # ... and confidence rounds up (also wider).
        assert t_critical(0.91, 5) == t_critical(0.95, 5)

    def test_degenerate_dof_is_unbounded(self):
        assert t_critical(0.95, 0) == math.inf
        assert t_critical(0.95, -3) == math.inf

    def test_untabulated_confidence_rejected(self):
        with pytest.raises(JoinError):
            t_critical(0.999, 10)


# ----------------------------------------------------------------------
# statcheck: the acceptance rule's own statistics
# ----------------------------------------------------------------------
class TestStatcheck:
    def test_wilson_known_value(self):
        assert wilson_lower_bound(95, 100) == pytest.approx(0.888, abs=1e-3)

    def test_wilson_edges_and_monotonicity(self):
        assert wilson_lower_bound(0, 0) == 0.0
        assert 0.0 < wilson_lower_bound(100, 100) < 1.0
        bounds = [wilson_lower_bound(k, 50) for k in range(51)]
        assert bounds == sorted(bounds)
        with pytest.raises(ValueError):
            wilson_lower_bound(5, 10, z_confidence=0.42)

    def test_binomial_cdf_matches_brute_force(self):
        n, p = 10, 0.3
        for k in range(n + 1):
            brute = sum(
                math.comb(n, i) * p**i * (1 - p) ** (n - i)
                for i in range(k + 1)
            )
            assert binomial_cdf(k, n, p) == pytest.approx(brute, rel=1e-12)

    def test_binomial_cdf_edges(self):
        assert binomial_cdf(-1, 10, 0.5) == 0.0
        assert binomial_cdf(10, 10, 0.5) == 1.0
        assert binomial_cdf(3, 10, 0.0) == 1.0
        assert binomial_cdf(3, 10, 1.0) == 0.0

    def test_check_coverage_verdicts(self):
        passing = check_coverage(191, 200, stated_coverage=0.95)
        assert passing.passed
        assert passing.lower_bound == pytest.approx(0.9167, abs=1e-3)
        failing = check_coverage(160, 200, stated_coverage=0.95)
        assert not failing.passed
        # The rule's false-failure probability is the binomial tail of
        # the failing region under the stated coverage — a property of
        # the rule, identical for any observed tally.
        assert 0.0 < passing.false_failure_probability < 0.5
        assert failing.false_failure_probability == \
            passing.false_failure_probability
        with pytest.raises(ValueError):
            check_coverage(0, 0, stated_coverage=0.95)

    def test_tracker_counts_missing_groups_as_misses(self):
        from repro.approx.estimator import CellEstimate

        tracker = CoverageTracker(stated_coverage=0.95)
        cells = {(("a",), "count"): CellEstimate(10.0, 5.0, 5.0)}
        exact = {(("a",), "count"): 12.0, (("b",), "count"): 3.0}
        tracker.record_cells(cells, exact)
        assert (tracker.trials, tracker.hits) == (2, 1)
        # The supported filter skips aggregates outside the contract.
        tracker = CoverageTracker(stated_coverage=0.95)
        tracker.record_cells(cells, exact, supported=set())
        assert tracker.trials == 0


# ----------------------------------------------------------------------
# Exactness: a full sample is the exact algorithm
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", generator.APPROX_KINDS)
@pytest.mark.parametrize("algorithm", ["approx", "approx(BF)"])
def test_full_sample_reproduces_oracle(kind, algorithm):
    case = generator.approx_case(kind)
    cell = generator.ConfigCell(algorithm, workers=4, approx=1.0)
    result = generator.run_cell(case, cell)
    oracle.assert_equivalent(result, case.oracle_rows(),
                             label=f"{case.name}/{cell.label()}")


def test_full_sample_cells_are_exact(kind_fixtures):
    case, warehouse, exact_cells = kind_fixtures["sum"]
    join = ApproxJoin(sample_rate=1.0, seed=3)
    join.run(warehouse, case.query)
    estimate = join.last_estimate
    assert estimate.exact
    assert estimate.cells.keys() == exact_cells.keys()
    for key, cell in estimate.cells.items():
        assert cell.exact and cell.half_width == 0.0
        assert cell.estimate == pytest.approx(exact_cells[key])


# ----------------------------------------------------------------------
# The statistical oracle contract (the tentpole acceptance criterion)
# ----------------------------------------------------------------------
def test_interval_coverage_battery(kind_fixtures):
    """>= 240 seeded runs at 95% confidence: Wilson lower bound >= 0.90.

    One trial is one ``(seed, group, aggregate)`` interval; a group the
    sample never saw counts as a miss.  The battery pools the count,
    sum and avg estimator paths — min/max report no interval and are
    excluded via ``unsupported``.  Every seed is fixed, so the observed
    tally is deterministic; the binomial acceptance rule exists so that
    a *re-randomised* battery would still pass with known probability
    (the verdict carries the rule's exact false-failure rate).
    """
    tracker = CoverageTracker(stated_coverage=0.95)
    runs = 0
    for kind in ("count", "sum", "avg"):
        case, warehouse, exact_cells = kind_fixtures[kind]
        supported_names = {key[1] for key in exact_cells}
        for seed in BATTERY_SEEDS:
            join = ApproxJoin(sample_rate=BATTERY_RATE, confidence=0.95,
                              seed=seed)
            join.run(warehouse, case.query)
            estimate = join.last_estimate
            supported = supported_names - set(estimate.unsupported)
            tracker.record_cells(estimate.cells, exact_cells,
                                 supported=supported)
            runs += 1
    assert runs >= 200
    verdict = tracker.verdict(min_lower_bound=0.90)
    assert verdict.trials >= 200
    assert verdict.passed, (
        f"{verdict.describe()}\nfirst misses: {tracker.misses[:5]}"
    )
    # The acceptance rule itself must be sharp: if the estimator truly
    # covered at its stated rate, this battery would practically never
    # fail (the false-failure probability is astronomically small).
    assert verdict.false_failure_probability < 1e-6


# ----------------------------------------------------------------------
# Progressive refinement
# ----------------------------------------------------------------------
def test_progressive_refines_monotonically_to_exact(kind_fixtures):
    case, warehouse, _ = kind_fixtures["count"]
    join = ApproxJoin(sample_rate=1.0, progressive=True, seed=4)
    run = join.run(warehouse, case.query)
    snapshots = join.last_snapshots
    assert len(snapshots) == snapshots[-1].blocks_total

    fractions = [snap.fraction_scanned for snap in snapshots]
    assert fractions == sorted(fractions)
    widths: dict = {}
    for snap in snapshots:
        for key, cell in snap.cells.items():
            assert cell.half_width <= widths.get(key, math.inf)
            widths[key] = cell.half_width

    final = snapshots[-1]
    assert final.exact
    assert all(cell.half_width == 0.0 for cell in final.cells.values())
    oracle.assert_equivalent(run.result, case.oracle_rows(),
                             label="progressive-final")


def test_progressive_stops_early_on_error_target(kind_fixtures):
    case, warehouse, _ = kind_fixtures["count"]
    join = ApproxJoin(sample_rate=1.0, progressive=True, seed=11,
                      max_error=0.5)
    join.run(warehouse, case.query)
    estimate = join.last_estimate
    assert estimate.blocks_scanned < estimate.blocks_total
    assert estimate.blocks_scanned >= join.policy.min_blocks
    assert join.last_snapshots[-1].max_relative_error() <= 0.5


# ----------------------------------------------------------------------
# Empty joins: aligned with the oracle
# ----------------------------------------------------------------------
def test_oracle_empty_join_yields_schema_only():
    case = generator.edge_case("empty-result")
    result = oracle.oracle_execute(case.t_table, case.l_table, case.query)
    assert result.num_rows == 0
    expected = list(case.query.group_by) + [
        spec.output_name() for spec in case.query.aggregates
    ]
    assert list(result.schema.names) == expected
    assert oracle_aggregate_cells(
        case.t_table, case.l_table, case.query) == {}


@pytest.mark.parametrize("sample_rate", [0.3, 1.0])
def test_approx_empty_join_matches_oracle(sample_rate):
    case = generator.edge_case("empty-result")
    warehouse = generator.build_cell_warehouse(case, 4, "parquet")
    join = ApproxJoin(sample_rate=sample_rate, seed=2)
    run = join.run(warehouse, case.query)
    assert run.result.num_rows == 0
    assert join.last_estimate.cells == {}
    diff = oracle.compare_tables(
        run.result,
        oracle.oracle_execute(case.t_table, case.l_table, case.query),
        label=f"approx@{sample_rate:g}/empty",
    )
    assert diff is None


# ----------------------------------------------------------------------
# Faults and policy validation
# ----------------------------------------------------------------------
def test_armed_fault_plan_rejects_approx(kind_fixtures):
    case, _, _ = kind_fixtures["count"]
    warehouse = generator.build_cell_warehouse(case, 30, "parquet")
    warehouse.arm_faults(FaultPlan.from_spec("crash:w2@scan"))
    try:
        with pytest.raises(JoinError, match="armed fault plan"):
            ApproxJoin(sample_rate=0.5, seed=1).run(warehouse, case.query)
    finally:
        warehouse.disarm_faults()


def test_policy_validation():
    with pytest.raises(ServiceError):
        ApproxPolicy(sample_rate=0.0)
    with pytest.raises(ServiceError):
        ApproxPolicy(sample_rate=1.5)
    with pytest.raises(ServiceError):
        ApproxPolicy(confidence=0.3)
    with pytest.raises(ServiceError):
        ApproxPolicy(confidence=1.0)
    with pytest.raises(ServiceError):
        ApproxPolicy(max_error=-0.1)
    with pytest.raises(ServiceError):
        ApproxPolicy(min_blocks=0)


# ----------------------------------------------------------------------
# The degraded service tier
# ----------------------------------------------------------------------
#: Admission shape that sheds best-effort arrivals almost immediately:
#: one slot, a short queue, and a shed threshold of two waiters.  The
#: queue timeout is effectively infinite so degraded requests survive
#: the queue instead of expiring.
_OVERLOAD = AdmissionConfig(
    slots=1, max_queue=4, shed_fraction=0.5, queue_timeout=1e9)


def _submit_overload(service, filler_query, probe_query,
                     probe_tenant="beta"):
    """Enough priority-0 fillers to trip shedding, then probes."""
    for _ in range(3):
        service.submit(filler_query, tenant="alpha", priority=0)
    tickets = [
        service.submit(probe_query, tenant=probe_tenant, priority=1)
        for _ in range(2)
    ]
    return tickets


class TestDegradedTier:
    def test_overload_sheds_to_approx(self, kind_fixtures):
        filler_case, warehouse, _ = kind_fixtures["count"]
        probe_case, _, _ = kind_fixtures["sum"]
        service = QueryService(warehouse, ServiceConfig(
            admission=_OVERLOAD, approx_degrade=True,
            enable_feedback=False,
        ))
        tickets = _submit_overload(
            service, filler_case.query, probe_case.query)
        report = service.drain()
        by_id = {outcome.ticket_id: outcome for outcome in report.outcomes}

        probes = [by_id[t.id] for t in tickets]
        degraded = [o for o in probes if o.degraded]
        assert degraded, "no probe was shed to the degraded tier"
        for outcome in degraded:
            assert outcome.status == "ok"
            assert outcome.algorithm == "approx"
            assert outcome.approx_report is not None
            assert outcome.approx_report["cells"]
            assert 0.0 < outcome.approx_report["fraction_scanned"] <= 1.0
        assert "~approx@" in report.render()
        assert service.metrics.counter(
            "admission.degraded_to_approx").value >= len(degraded)
        assert service.metrics.counter("approx.runs").value >= len(degraded)

    def test_exact_tier_unaffected(self, kind_fixtures):
        filler_case, warehouse, _ = kind_fixtures["count"]
        probe_case, _, _ = kind_fixtures["sum"]
        service = QueryService(warehouse, ServiceConfig(
            admission=_OVERLOAD, approx_degrade=True,
            enable_feedback=False,
        ))
        _submit_overload(service, filler_case.query, probe_case.query)
        report = service.drain()
        for outcome in report.outcomes:
            if outcome.tenant == "alpha":
                assert not outcome.degraded
                assert outcome.status == "ok"
                oracle.assert_equivalent(
                    outcome.result, filler_case.oracle_rows(),
                    label="exact-tier")

    def test_without_degrade_overload_rejects(self, kind_fixtures):
        filler_case, warehouse, _ = kind_fixtures["count"]
        probe_case, _, _ = kind_fixtures["sum"]
        service = QueryService(warehouse, ServiceConfig(
            admission=_OVERLOAD, approx_degrade=False,
            enable_feedback=False,
        ))
        tickets = _submit_overload(
            service, filler_case.query, probe_case.query)
        report = service.drain()
        by_id = {outcome.ticket_id: outcome for outcome in report.outcomes}
        probes = [by_id[t.id] for t in tickets]
        assert all(o.status == "rejected" and
                   o.reject_reason == "overload_shed" for o in probes)

    def test_minmax_query_falls_back_to_exact(self, kind_fixtures):
        filler_case, warehouse, _ = kind_fixtures["count"]
        probe_case = generator.approx_case("minmax")
        service = QueryService(warehouse, ServiceConfig(
            admission=_OVERLOAD, approx_degrade=True,
            enable_feedback=False,
        ))
        tickets = _submit_overload(
            service, filler_case.query, probe_case.query)
        report = service.drain()
        by_id = {outcome.ticket_id: outcome for outcome in report.outcomes}
        probes = [by_id[t.id] for t in tickets]
        # Shed to the degraded tier, but min/max has no closed-form
        # interval: the service runs the exact plan and says so.
        assert all(o.status == "ok" and not o.degraded for o in probes)
        assert service.metrics.counter("approx.unsupported").value >= 1
        # The probe ran on the service's (filler-case) warehouse, so
        # the exact answer is its query over the filler case's tables.
        expected = oracle.oracle_execute(
            filler_case.t_table, filler_case.l_table, probe_case.query)
        for outcome in probes:
            oracle.assert_equivalent(
                outcome.result, expected, label="minmax-fallback")

    def test_tenant_policy_overrides_service_policy(self, kind_fixtures):
        filler_case, warehouse, _ = kind_fixtures["count"]
        probe_case, _, _ = kind_fixtures["sum"]
        service = QueryService(warehouse, ServiceConfig(
            admission=_OVERLOAD, approx_degrade=True,
            enable_feedback=False,
            approx_policy=ApproxPolicy(sample_rate=0.25),
            approx_tenant_policies={"beta": ApproxPolicy(sample_rate=0.5)},
        ))
        tickets = _submit_overload(
            service, filler_case.query, probe_case.query,
            probe_tenant="beta")
        report = service.drain()
        by_id = {outcome.ticket_id: outcome for outcome in report.outcomes}
        degraded = [o for o in (by_id[t.id] for t in tickets) if o.degraded]
        assert degraded
        assert all(o.approx_report["sample_rate"] == 0.5 for o in degraded)

    def test_degraded_results_never_enter_result_cache(self, kind_fixtures):
        filler_case, warehouse, _ = kind_fixtures["count"]
        probe_case, _, _ = kind_fixtures["sum"]
        service = QueryService(warehouse, ServiceConfig(
            admission=_OVERLOAD, approx_degrade=True,
            enable_feedback=False, enable_result_cache=True,
        ))
        tickets = _submit_overload(
            service, filler_case.query, probe_case.query)
        report = service.drain()
        by_id = {outcome.ticket_id: outcome for outcome in report.outcomes}
        assert any(by_id[t.id].degraded for t in tickets)
        # Re-running the probe uncontended must execute (exactly), not
        # answer from a cache an approximate result would have polluted.
        ticket = service.submit(probe_case.query, tenant="beta", priority=0)
        second = service.drain()
        outcome = {o.ticket_id: o for o in second.outcomes}[ticket.id]
        assert outcome.status == "ok"
        assert not outcome.cache_hit
        assert not outcome.degraded
        oracle.assert_equivalent(
            outcome.result,
            oracle.oracle_execute(
                filler_case.t_table, filler_case.l_table,
                probe_case.query),
            label="post-degrade-exact")
