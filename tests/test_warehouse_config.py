"""Tests for the warehouse facade and the configuration module."""

import pytest

from repro import HybridWarehouse, default_config
from repro.config import (
    BloomFilterConfig,
    ClusterConfig,
    HybridConfig,
    PaperScale,
)
from repro.errors import CatalogError


class TestConfig:
    def test_paper_cluster_defaults(self):
        cluster = ClusterConfig()
        assert cluster.hdfs_nodes == 30
        assert cluster.db_workers == 30
        assert cluster.db_servers == 5
        assert cluster.jen_workers() == 30
        assert cluster.hdfs_replication == 2

    def test_bloom_defaults_match_paper(self):
        bloom = BloomFilterConfig()
        assert bloom.num_bits == 128 * 1024 * 1024
        assert bloom.num_hashes == 2
        assert bloom.size_bytes() == 16 * 1024 * 1024

    def test_paper_scale_sizes(self):
        paper = PaperScale()
        assert paper.t_rows == 1_600_000_000
        assert paper.l_rows == 15_000_000_000
        assert paper.unique_join_keys == 16_000_000

    def test_scaled_row_counts(self):
        config = default_config(scale=1 / 1000)
        assert config.t_rows() == 1_600_000
        assert config.l_rows() == 15_000_000
        assert config.join_keys() == 16_000

    def test_scaled_copy(self):
        config = HybridConfig()
        rescaled = config.scaled(0.5)
        assert rescaled.scale == 0.5
        assert rescaled.cluster is config.cluster

    def test_bloom_bits_scale_with_keys(self):
        big = default_config(scale=1.0)
        small = default_config(scale=1 / 10_000)
        assert big.bloom_bits() == 128 * 1024 * 1024
        assert small.bloom_bits() == 128 * 1024 * 1024 // 10_000
        tiny = default_config(scale=1e-9)
        assert tiny.bloom_bits() >= 1024  # floor


class TestWarehouse:
    def test_wiring(self, loaded_warehouse):
        assert loaded_warehouse.database.num_workers == 30
        assert loaded_warehouse.jen.num_workers == 30
        assert loaded_warehouse.topology.switch_bytes_per_s > 0
        assert "cal_filter" in loaded_warehouse.udfs.names()

    def test_gather_round_trips(self, loaded_warehouse, paper_workload):
        t = loaded_warehouse.gather_db_table("T")
        assert t.num_rows == paper_workload.t_table.num_rows
        l_table = loaded_warehouse.gather_hdfs_table("L")
        assert l_table.num_rows == paper_workload.l_table.num_rows

    def test_duplicate_db_table(self, paper_workload):
        warehouse = HybridWarehouse(default_config(scale=1 / 50_000))
        warehouse.load_db_table("T", paper_workload.t_table, "uniqKey")
        with pytest.raises(CatalogError):
            warehouse.load_db_table("T", paper_workload.t_table, "uniqKey")

    def test_default_hdfs_path(self, paper_workload):
        warehouse = HybridWarehouse(default_config(scale=1 / 50_000))
        warehouse.load_hdfs_table("L", paper_workload.l_table, "text")
        meta = warehouse.hdfs.table_meta("L")
        assert meta.path == "/warehouse/L"
