"""Property-based tests (hypothesis) for the Bloom filter invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloom import BloomFilter

keys_strategy = st.lists(
    st.integers(min_value=0, max_value=2**62), max_size=200
)


@given(keys=keys_strategy)
@settings(max_examples=80, deadline=None)
def test_no_false_negatives(keys):
    """Every inserted key must test positive — the guarantee the join
    algorithms' correctness rests on."""
    bloom = BloomFilter(512, num_hashes=2)
    bloom.add(np.array(keys, dtype=np.int64))
    if keys:
        assert bloom.contains(np.array(keys, dtype=np.int64)).all()


@given(left=keys_strategy, right=keys_strategy)
@settings(max_examples=60, deadline=None)
def test_union_equals_filter_of_union(left, right):
    """OR-merging local filters is exactly a filter over the union —
    the property the paper's combine_filter UDF relies on."""
    a = BloomFilter(1024, num_hashes=2, seed=5)
    b = BloomFilter(1024, num_hashes=2, seed=5)
    a.add(np.array(left, dtype=np.int64))
    b.add(np.array(right, dtype=np.int64))
    merged = a.copy().union_in_place(b)

    combined = BloomFilter(1024, num_hashes=2, seed=5)
    combined.add(np.array(left + right, dtype=np.int64))

    probes = np.arange(0, 500, dtype=np.int64)
    assert (merged.contains(probes) == combined.contains(probes)).all()


@given(keys=keys_strategy, extra=keys_strategy)
@settings(max_examples=60, deadline=None)
def test_adding_more_keys_is_monotone(keys, extra):
    """Adding keys can only turn negatives into positives, never the
    reverse (bit arrays are monotone under OR)."""
    before = BloomFilter(512, num_hashes=3)
    before.add(np.array(keys, dtype=np.int64))
    after = before.copy()
    after.add(np.array(extra, dtype=np.int64))

    probes = np.arange(0, 300, dtype=np.int64)
    was_positive = before.contains(probes)
    still_positive = after.contains(probes)
    assert (still_positive | ~was_positive).all()


@given(keys=keys_strategy, parts=st.integers(1, 8))
@settings(max_examples=50, deadline=None)
def test_combine_is_order_and_partition_invariant(keys, parts):
    """Splitting insertions across workers and merging gives a filter
    identical to single-site construction."""
    whole = BloomFilter(1024, num_hashes=2, seed=11)
    whole.add(np.array(keys, dtype=np.int64))

    chunks = [keys[i::parts] for i in range(parts)]
    locals_ = []
    for chunk in chunks:
        bloom = BloomFilter(1024, num_hashes=2, seed=11)
        bloom.add(np.array(chunk, dtype=np.int64))
        locals_.append(bloom)
    merged = BloomFilter.combine(locals_)

    probes = np.arange(0, 400, dtype=np.int64)
    assert (merged.contains(probes) == whole.contains(probes)).all()
    assert merged.bits_set() == whole.bits_set()


@given(
    num_bits=st.sampled_from([256, 1024, 8192]),
    num_hashes=st.integers(1, 4),
    keys=keys_strategy,
)
@settings(max_examples=40, deadline=None)
def test_fill_ratio_bounds(num_bits, num_hashes, keys):
    """Fill ratio stays in [0, 1] and bits_set <= k * insertions."""
    bloom = BloomFilter(num_bits, num_hashes=num_hashes)
    bloom.add(np.array(keys, dtype=np.int64))
    assert 0.0 <= bloom.fill_ratio() <= 1.0
    assert bloom.bits_set() <= num_hashes * max(1, len(keys)) \
        or bloom.bits_set() <= num_bits
