"""Tests for the hash partitioning functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edw.partitioner import agreed_hash_partition, db_internal_partition
from repro.errors import PartitioningError


class TestBasics:
    def test_range_of_outputs(self):
        keys = np.arange(1000)
        for function in (agreed_hash_partition, db_internal_partition):
            parts = function(keys, 7)
            assert parts.min() >= 0 and parts.max() < 7

    def test_deterministic(self):
        keys = np.arange(100)
        assert (agreed_hash_partition(keys, 5)
                == agreed_hash_partition(keys, 5)).all()

    def test_invalid_partition_count(self):
        for function in (agreed_hash_partition, db_internal_partition):
            with pytest.raises(PartitioningError):
                function(np.array([1]), 0)

    def test_single_partition(self):
        parts = agreed_hash_partition(np.arange(50), 1)
        assert (parts == 0).all()

    def test_two_functions_differ(self):
        """The DB's private hash must not equal the agreed hash — the
        paper's DB-side join reshuffles precisely because JEN cannot
        target the private function."""
        keys = np.arange(2000)
        agreed = agreed_hash_partition(keys, 16)
        internal = db_internal_partition(keys, 16)
        assert (agreed != internal).any()
        # And they should disagree on a substantial fraction.
        assert float((agreed != internal).mean()) > 0.5

    def test_roughly_uniform(self):
        keys = np.arange(30_000)
        for function in (agreed_hash_partition, db_internal_partition):
            parts = function(keys, 10)
            counts = np.bincount(parts, minlength=10)
            assert counts.min() > 2400 and counts.max() < 3600


class TestProperties:
    @given(
        keys=st.lists(st.integers(0, 2**40), min_size=1, max_size=300),
        parts=st.integers(1, 40),
    )
    @settings(max_examples=60, deadline=None)
    def test_same_key_same_partition(self, keys, parts):
        array = np.array(keys + keys, dtype=np.int64)
        assignments = agreed_hash_partition(array, parts)
        half = len(keys)
        assert (assignments[:half] == assignments[half:]).all()

    @given(parts=st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_all_outputs_in_range(self, parts):
        keys = np.arange(500, dtype=np.int64)
        assignments = db_internal_partition(keys, parts)
        assert ((assignments >= 0) & (assignments < parts)).all()
