"""Unit tests for repro.core.bloom."""

import numpy as np
import pytest

from repro.core.bloom import BloomFilter
from repro.errors import BloomFilterError


class TestConstruction:
    def test_invalid_sizes(self):
        with pytest.raises(BloomFilterError):
            BloomFilter(0)
        with pytest.raises(BloomFilterError):
            BloomFilter(8, num_hashes=0)

    def test_starts_empty(self):
        bloom = BloomFilter(256)
        assert bloom.is_empty()
        assert bloom.bits_set() == 0
        assert bloom.num_added == 0


class TestMembership:
    def test_added_keys_always_found(self):
        bloom = BloomFilter(4096, num_hashes=2)
        keys = np.arange(100, dtype=np.int64)
        bloom.add(keys)
        assert bloom.contains(keys).all()
        assert bloom.num_added == 100

    def test_contains_dunder(self):
        bloom = BloomFilter(4096)
        bloom.add(np.array([42]))
        assert 42 in bloom

    def test_empty_query(self):
        bloom = BloomFilter(64)
        assert len(bloom.contains(np.array([], dtype=np.int64))) == 0

    def test_add_plain_iterable(self):
        bloom = BloomFilter(1024)
        bloom.add([1, 2, 3])
        assert 2 in bloom

    def test_negative_like_large_keys(self):
        bloom = BloomFilter(4096)
        keys = np.array([2**40, 2**62, 17], dtype=np.int64)
        bloom.add(keys)
        assert bloom.contains(keys).all()


class TestFalsePositiveRate:
    def test_empirical_fpr_close_to_theory(self):
        rng = np.random.default_rng(7)
        universe = rng.choice(10**9, size=30_000, replace=False)
        inserted, probed = universe[:10_000], universe[10_000:]
        bloom = BloomFilter(80_000, num_hashes=2)
        bloom.add(inserted)
        empirical = float(bloom.contains(probed).mean())
        theory = BloomFilter.expected_fpr(80_000, 2, 10_000)
        assert abs(empirical - theory) < 0.02

    def test_paper_configuration_is_about_5_percent(self):
        fpr = BloomFilter.expected_fpr(
            num_bits=128 * 1024 * 1024,
            num_hashes=2,
            num_keys=16 * 1024 * 1024,
        )
        assert 0.04 < fpr < 0.06

    def test_estimated_fpr_tracks_fill(self):
        bloom = BloomFilter(1024, num_hashes=2)
        assert bloom.estimated_fpr() == 0.0
        bloom.add(np.arange(200))
        assert 0.0 < bloom.estimated_fpr() < 1.0

    def test_optimal_hash_count(self):
        # m/n = 8 bits per key -> k* = 8 ln 2 ~ 5.5
        assert BloomFilter.optimal_num_hashes(8000, 1000) in (5, 6)
        assert BloomFilter.optimal_num_hashes(10, 0) == 1


class TestMerge:
    def test_union_sees_both_sides(self):
        a = BloomFilter(2048, seed=3)
        b = BloomFilter(2048, seed=3)
        a.add(np.array([1, 2, 3]))
        b.add(np.array([100, 200]))
        a.union_in_place(b)
        assert a.contains(np.array([1, 2, 3, 100, 200])).all()

    def test_combine_many(self):
        filters = []
        for start in range(0, 50, 10):
            bloom = BloomFilter(4096, seed=9)
            bloom.add(np.arange(start, start + 10))
            filters.append(bloom)
        merged = BloomFilter.combine(filters)
        assert merged.contains(np.arange(50)).all()
        assert merged.num_added == 50

    def test_combine_empty_rejected(self):
        with pytest.raises(BloomFilterError):
            BloomFilter.combine([])

    def test_incompatible_merge_rejected(self):
        a = BloomFilter(1024)
        for other in (BloomFilter(2048), BloomFilter(1024, num_hashes=3),
                      BloomFilter(1024, seed=99)):
            with pytest.raises(BloomFilterError, match="incompatible"):
                a.union_in_place(other)

    def test_copy_is_independent(self):
        a = BloomFilter(1024)
        a.add(np.array([1]))
        b = a.copy()
        b.add(np.array([999]))
        assert 999 in b
        # With one key added, key 999 is almost surely absent from a.
        assert a.bits_set() <= 2


class TestSizing:
    def test_size_bytes(self):
        # 1024 bits -> 16 words of 8 bytes.
        assert BloomFilter(1024).size_bytes() == 128

    def test_repr_mentions_fill(self):
        assert "fill=" in repr(BloomFilter(64))
