"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import AllOf, Event, Resource, SimEngine, Timeout


class TestTimeouts:
    def test_sequential_timeouts(self):
        engine = SimEngine()
        log = []

        def process():
            yield Timeout(5.0)
            log.append(engine.now)
            yield Timeout(2.5)
            log.append(engine.now)

        engine.process(process())
        assert engine.run() == 7.5
        assert log == [5.0, 7.5]

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)

    def test_parallel_processes_interleave(self):
        engine = SimEngine()
        log = []

        def worker(name, delay):
            yield Timeout(delay)
            log.append((engine.now, name))

        engine.process(worker("slow", 10))
        engine.process(worker("fast", 1))
        engine.run()
        assert log == [(1.0, "fast"), (10.0, "slow")]

    def test_run_until(self):
        engine = SimEngine()

        def process():
            yield Timeout(100)

        engine.process(process())
        assert engine.run(until=10) == 10
        assert engine.run() == 100


class TestEvents:
    def test_event_wakes_waiter(self):
        engine = SimEngine()
        gate = engine.event("gate")
        log = []

        def waiter():
            value = yield gate
            log.append((engine.now, value))

        def trigger():
            yield Timeout(3)
            gate.succeed("payload")

        engine.process(waiter())
        engine.process(trigger())
        engine.run()
        assert log == [(3.0, "payload")]

    def test_double_trigger_rejected(self):
        engine = SimEngine()
        event = engine.event()
        event.succeed()
        with pytest.raises(SimulationError, match="twice"):
            event.succeed()

    def test_wait_on_already_triggered(self):
        engine = SimEngine()
        event = engine.event()
        event.succeed(7)
        log = []

        def waiter():
            value = yield event
            log.append(value)

        engine.process(waiter())
        engine.run()
        assert log == [7]

    def test_all_of_barrier(self):
        engine = SimEngine()
        events = [engine.event() for _ in range(3)]
        log = []

        def waiter():
            yield AllOf(events)
            log.append(engine.now)

        def trigger(event, delay):
            yield Timeout(delay)
            event.succeed()

        engine.process(waiter())
        for event, delay in zip(events, (1, 9, 4)):
            engine.process(trigger(event, delay))
        engine.run()
        assert log == [9.0]

    def test_deadlock_detection(self):
        engine = SimEngine()

        def stuck():
            yield engine.event("never")

        engine.process(stuck())
        with pytest.raises(SimulationError, match="deadlock"):
            engine.run()

    def test_process_waits_on_process(self):
        engine = SimEngine()
        log = []

        def child():
            yield Timeout(4)
            return "done"

        def parent():
            value = yield engine.process(child())
            log.append((engine.now, value))

        engine.process(parent())
        engine.run()
        assert log == [(4.0, "done")]


class TestResources:
    def test_fifo_capacity(self):
        engine = SimEngine()
        resource = engine.resource(1, name="disk")
        log = []

        def user(name):
            request = resource.request()
            yield request
            log.append((engine.now, name, "start"))
            yield Timeout(5)
            resource.release(request)
            log.append((engine.now, name, "end"))

        engine.process(user("a"))
        engine.process(user("b"))
        engine.run()
        assert log == [
            (0.0, "a", "start"), (5.0, "a", "end"),
            (5.0, "b", "start"), (10.0, "b", "end"),
        ]

    def test_fractional_capacity_sharing(self):
        engine = SimEngine()
        resource = engine.resource(2.0)
        starts = []

        def user():
            request = resource.request(1.0)
            yield request
            starts.append(engine.now)
            yield Timeout(1)
            resource.release(request)

        for _ in range(4):
            engine.process(user())
        engine.run()
        assert starts == [0.0, 0.0, 1.0, 1.0]

    def test_oversized_request_rejected(self):
        engine = SimEngine()
        resource = engine.resource(1.0)
        with pytest.raises(SimulationError, match="exceeds capacity"):
            resource.request(2.0)

    def test_invalid_capacity(self):
        engine = SimEngine()
        with pytest.raises(SimulationError):
            engine.resource(0)

    def test_unsupported_yield(self):
        engine = SimEngine()

        def bad():
            yield 42

        engine.process(bad())
        with pytest.raises(SimulationError, match="unsupported"):
            engine.run()
