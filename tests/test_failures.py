"""Failure-handling tests: worker failures, bad inputs, edge conditions."""

import pytest

from repro import algorithm_by_name, reference_join
from repro.errors import JoinError
from tests.conftest import build_test_warehouse


class TestJenWorkerFailure:
    def test_scan_survives_worker_failure(self, paper_workload,
                                          paper_query):
        warehouse = build_test_warehouse(paper_workload)
        warehouse.jen.fail_worker(7)
        assert warehouse.jen.num_workers == 29
        scan = warehouse.jen.distributed_scan(paper_query)
        # Every row of L is still scanned exactly once.
        assert scan.stats.rows_scanned == paper_workload.l_table.num_rows

    def test_join_correct_after_failure(self, paper_workload, paper_query):
        warehouse = build_test_warehouse(paper_workload)
        warehouse.jen.fail_worker(0)
        warehouse.jen.fail_worker(15)
        reference = reference_join(
            paper_workload.t_table, paper_workload.l_table, paper_query
        )
        for name in ("zigzag", "repartition", "db(BF)"):
            result = algorithm_by_name(name).run(warehouse, paper_query)
            assert result.result.to_rows() == reference.to_rows(), name

    def test_locality_degrades_but_survives(self, paper_workload,
                                            paper_query):
        warehouse = build_test_warehouse(paper_workload)
        healthy = warehouse.jen.coordinator.plan_scan(
            paper_query.hdfs_table
        ).locality_fraction()
        warehouse.jen.fail_worker(3)
        degraded = warehouse.jen.coordinator.plan_scan(
            paper_query.hdfs_table
        ).locality_fraction()
        assert degraded <= healthy
        # Replication factor 2 keeps most blocks locally readable.
        assert degraded > 0.5

    def test_unknown_worker_rejected(self, paper_workload):
        warehouse = build_test_warehouse(paper_workload)
        with pytest.raises(JoinError, match="no live JEN worker"):
            warehouse.jen.fail_worker(999)

    def test_cannot_fail_all_workers(self, paper_workload):
        warehouse = build_test_warehouse(paper_workload)
        for worker_id in range(29):
            warehouse.jen.fail_worker(worker_id)
        with pytest.raises(JoinError, match="last JEN worker"):
            warehouse.jen.fail_worker(29)

    def test_double_failure_rejected(self, paper_workload):
        warehouse = build_test_warehouse(paper_workload)
        warehouse.jen.fail_worker(5)
        with pytest.raises(JoinError):
            warehouse.jen.fail_worker(5)

    def test_single_survivor_runs_everything(self, paper_workload,
                                             paper_query):
        warehouse = build_test_warehouse(paper_workload)
        for worker_id in range(29):
            warehouse.jen.fail_worker(worker_id)
        reference = reference_join(
            paper_workload.t_table, paper_workload.l_table, paper_query
        )
        result = algorithm_by_name("repartition").run(
            warehouse, paper_query
        )
        assert result.result.to_rows() == reference.to_rows()


class TestBadInputs:
    def test_query_against_missing_tables(self, paper_workload,
                                          paper_query):
        from repro import HybridWarehouse, default_config
        from repro.errors import CatalogError

        warehouse = HybridWarehouse(default_config(scale=1 / 50_000))
        with pytest.raises(CatalogError):
            algorithm_by_name("zigzag").run(warehouse, paper_query)

    def test_unknown_algorithm_name(self):
        with pytest.raises(JoinError, match="unknown join algorithm"):
            algorithm_by_name("hyperloop")

    def test_bf_suffix_parsing(self):
        repartition = algorithm_by_name("repartition(BF)")
        assert repartition.use_bloom
        db = algorithm_by_name("db(BF)")
        assert db.use_bloom
        plain = algorithm_by_name("repartition")
        assert not plain.use_bloom
