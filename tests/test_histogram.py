"""Tests for the equi-depth histogram statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.query.histogram import EquiDepthHistogram, TableStatistics
from repro.relational.expressions import CompareOp, compare


class TestHistogram:
    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            EquiDepthHistogram(np.array([]))

    def test_bad_bucket_count(self):
        with pytest.raises(ReproError):
            EquiDepthHistogram(np.array([1.0]), num_buckets=0)

    def test_uniform_le_estimates(self):
        rng = np.random.default_rng(3)
        values = rng.integers(0, 1000, 50_000)
        histogram = EquiDepthHistogram(values)
        for literal in (100, 250, 500, 900):
            truth = float((values <= literal).mean())
            assert histogram.estimate_le(literal) == \
                pytest.approx(truth, abs=0.02)

    def test_boundaries(self):
        histogram = EquiDepthHistogram(np.arange(100))
        assert histogram.estimate_le(-1) == 0.0
        assert histogram.estimate_le(99) == 1.0
        assert histogram.estimate_le(1000) == 1.0

    def test_skewed_distribution(self):
        rng = np.random.default_rng(5)
        values = (rng.pareto(2.0, 50_000) * 100).astype(np.int64)
        histogram = EquiDepthHistogram(values)
        for quantile in (0.25, 0.5, 0.9):
            literal = float(np.quantile(values, quantile))
            assert histogram.estimate_le(literal) == \
                pytest.approx(quantile, abs=0.05)

    def test_eq_estimate_reasonable(self):
        values = np.repeat(np.arange(100), 50)  # 50 copies of each value
        histogram = EquiDepthHistogram(values)
        assert histogram.estimate_eq(42) == pytest.approx(1 / 100, rel=0.5)
        assert histogram.estimate_eq(-5) == 0.0

    @given(
        literal=st.integers(-10, 1010),
        op=st.sampled_from(list(CompareOp)),
    )
    @settings(max_examples=60, deadline=None)
    def test_estimates_are_probabilities(self, literal, op):
        values = np.random.default_rng(0).integers(0, 1000, 5_000)
        histogram = EquiDepthHistogram(values)
        estimate = histogram.estimate(op, float(literal))
        assert -1e-9 <= estimate <= 1.0 + 1e-9

    def test_complementarity(self):
        values = np.random.default_rng(1).integers(0, 1000, 20_000)
        histogram = EquiDepthHistogram(values)
        for literal in (100.0, 500.0):
            le = histogram.estimate(CompareOp.LE, literal)
            gt = histogram.estimate(CompareOp.GT, literal)
            assert le + gt == pytest.approx(1.0, abs=1e-9)


class TestTableStatistics:
    def test_analyze_and_estimate_paper_predicate(self, paper_workload):
        statistics = TableStatistics.analyze(paper_workload.t_table)
        thresholds = paper_workload.t_thresholds
        predicate = (
            compare("corPred", "<=", thresholds.cor_threshold)
            & compare("indPred", "<=", thresholds.ind_threshold)
        )
        estimate = statistics.estimate_predicate(predicate)
        # The generated sigma_T is 0.1; independence holds by design.
        assert estimate == pytest.approx(0.1, abs=0.03)
        rows = statistics.estimate_rows(predicate)
        assert rows == pytest.approx(
            paper_workload.t_table.num_rows * 0.1, rel=0.35
        )

    def test_string_columns_skipped(self, paper_workload):
        statistics = TableStatistics.analyze(paper_workload.l_table)
        assert "groupByExtractCol" not in statistics.histograms
        assert "joinKey" in statistics.histograms

    def test_unknown_column_neutral(self, paper_workload):
        statistics = TableStatistics.analyze(
            paper_workload.t_table, columns=["corPred"]
        )
        estimate = statistics.estimate_predicate(
            compare("indPred", "<=", 10)
        )
        assert estimate == 1.0

    def test_true_predicate(self, paper_workload):
        from repro.relational.expressions import TruePredicate

        statistics = TableStatistics.analyze(paper_workload.t_table)
        assert statistics.estimate_predicate(TruePredicate()) == 1.0
