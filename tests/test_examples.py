"""Smoke tests: every example script runs to completion.

Run as subprocesses so the examples stay honest standalone programs;
marked for the end of the suite since each takes a few seconds.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

EXPECTED_MARKERS = {
    "quickstart.py": ["zigzag", "result_return"],
    "ad_campaign.py": ["advisor picks", "url_prefix"],
    "advisor_tour.py": ["winner=", "zigzag"],
    "format_study.py": ["parquet", "Bloom filter gain"],
    "scaling_study.py": ["crossover", "zigzag"],
    "sql_interface.py": ["auto mode picked", "identical"],
    "star_schema.py": ["in-database dimension join", "identical"],
    "failure_drill.py": ["result correct: True", "critical path"],
}


def test_example_inventory():
    """The repo ships the six documented examples."""
    assert set(EXAMPLES) == set(EXPECTED_MARKERS)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    for marker in EXPECTED_MARKERS[script]:
        assert marker in completed.stdout, (script, marker)
