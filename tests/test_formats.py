"""Tests for the HDFS storage formats."""

import pytest

from repro.errors import StorageError
from repro.hdfs.formats import (
    ParquetFormat,
    TextFormat,
    format_by_name,
)
from repro.workload.scenario import log_schema, transaction_schema


class TestRegistry:
    def test_lookup(self):
        assert isinstance(format_by_name("text"), TextFormat)
        assert isinstance(format_by_name("parquet"), ParquetFormat)

    def test_unknown_format(self):
        with pytest.raises(StorageError, match="unknown storage format"):
            format_by_name("orc2")


class TestTextFormat:
    def test_no_projection_pushdown(self):
        fmt = TextFormat()
        schema = log_schema()
        full = fmt.scan_bytes_per_row(schema)
        projected = fmt.scan_bytes_per_row(schema, ["joinKey"])
        assert full == projected  # whole rows are read regardless

    def test_log_table_is_about_1tb_at_paper_scale(self):
        fmt = TextFormat()
        total = fmt.table_stored_bytes(log_schema(), 15_000_000_000)
        assert 0.9e12 < total < 1.35e12

    def test_row_width_composition(self):
        fmt = TextFormat()
        schema = log_schema()
        assert fmt.row_stored_bytes(schema) == sum(
            fmt.column_stored_bytes(column) for column in schema
        )


class TestParquetFormat:
    def test_projection_pushdown(self):
        fmt = ParquetFormat()
        schema = log_schema()
        full = fmt.scan_bytes_per_row(schema)
        projected = fmt.scan_bytes_per_row(schema, ["joinKey"])
        assert projected < full

    def test_compression_vs_text_about_2_4x(self):
        text = TextFormat().table_stored_bytes(log_schema(), 10_000)
        parquet = ParquetFormat().table_stored_bytes(log_schema(), 10_000)
        assert 2.0 < text / parquet < 3.2

    def test_log_table_is_about_421gb_at_paper_scale(self):
        fmt = ParquetFormat()
        total = fmt.table_stored_bytes(log_schema(), 15_000_000_000)
        assert 0.33e12 < total < 0.52e12

    def test_columns_cheaper_than_raw(self):
        fmt = ParquetFormat()
        for column in log_schema():
            assert fmt.column_stored_bytes(column) < column.width() + 1


class TestTransactionTable:
    def test_db_storage_is_about_97gb_at_paper_scale(self):
        # The database stores logical widths; T is 97 GB / 1.6 B rows.
        total = transaction_schema().row_width() * 1_600_000_000
        assert 0.85e11 < total < 1.15e11


class TestOrcFormat:
    def test_registered(self):
        from repro.hdfs.formats import OrcFormat
        assert isinstance(format_by_name("orc"), OrcFormat)

    def test_projection_pushdown(self):
        fmt = format_by_name("orc")
        schema = log_schema()
        assert fmt.scan_bytes_per_row(schema, ["joinKey"]) < \
            fmt.scan_bytes_per_row(schema)

    def test_compresses_harder_than_parquet(self):
        schema = log_schema()
        orc = format_by_name("orc").table_stored_bytes(schema, 10_000)
        parquet = format_by_name("parquet").table_stored_bytes(
            schema, 10_000
        )
        assert orc < parquet

    def test_join_correct_on_orc(self):
        from repro import algorithm_by_name, reference_join
        from repro.workload import WorkloadSpec, build_paper_query, \
            generate_workload
        from tests.conftest import build_test_warehouse

        workload = generate_workload(WorkloadSpec(
            sigma_t=0.2, sigma_l=0.2, s_l=0.2,
            t_rows=4_000, l_rows=20_000, n_keys=100, seed=3,
        ))
        query = build_paper_query(workload)
        warehouse = build_test_warehouse(workload, format_name="orc")
        result = algorithm_by_name("zigzag").run(warehouse, query)
        reference = reference_join(
            workload.t_table, workload.l_table, query
        )
        assert result.result.to_rows() == reference.to_rows()
