"""Result-correctness tests: every distributed algorithm must produce
exactly the single-node oracle's answer.

This is the core safety property of the reproduction: Bloom filters have
false positives but no false negatives, shuffles conserve tuples, and
partial aggregation merges losslessly — so all nine algorithms agree
with :func:`repro.testkit.oracle.oracle_execute`, a dict-based executor
that shares no code with the engines.  Results are compared as row
multisets (:func:`repro.testkit.oracle.assert_equivalent`) because a
correct executor is only constrained up to output order.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import algorithm_by_name, generate_workload
from repro.testkit import oracle
from repro.workload import WorkloadSpec, build_paper_query
from tests.conftest import build_test_warehouse

ALL_ALGORITHMS = [
    "db", "db(BF)", "broadcast", "repartition", "repartition(BF)",
    "zigzag", "zigzag-db", "semijoin", "perf",
]


@pytest.fixture(scope="module")
def reference_result(paper_workload, paper_query):
    return oracle.oracle_execute(
        paper_workload.t_table, paper_workload.l_table, paper_query
    )


class TestAllAlgorithmsMatchReference:
    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_parquet(self, name, loaded_warehouse, paper_query,
                     reference_result):
        result = algorithm_by_name(name).run(loaded_warehouse, paper_query)
        oracle.assert_equivalent(result.result, reference_result, label=name)

    @pytest.mark.parametrize("name", ["zigzag", "db(BF)", "repartition"])
    def test_text_format(self, name, paper_workload, paper_query,
                         reference_result):
        warehouse = build_test_warehouse(paper_workload, format_name="text")
        result = algorithm_by_name(name).run(warehouse, paper_query)
        oracle.assert_equivalent(result.result, reference_result, label=name)


class TestEdgeWorkloads:
    def run_all(self, spec):
        workload = generate_workload(spec)
        query = build_paper_query(workload)
        warehouse = build_test_warehouse(workload)
        expected = oracle.oracle_execute(
            workload.t_table, workload.l_table, query
        )
        for name in ALL_ALGORITHMS:
            result = algorithm_by_name(name).run(warehouse, query)
            oracle.assert_equivalent(result.result, expected, label=name)
        return expected

    def test_highly_selective_both_sides(self):
        self.run_all(WorkloadSpec(
            sigma_t=0.01, sigma_l=0.01, s_l=0.5,
            t_rows=20_000, l_rows=100_000, n_keys=200, seed=7,
        ))

    def test_nearly_unselective(self):
        self.run_all(WorkloadSpec(
            sigma_t=0.9, sigma_l=0.9, s_t=0.9, s_l=0.9,
            t_rows=5_000, l_rows=30_000, n_keys=100, seed=8,
        ))

    def test_tiny_tables_many_workers(self):
        """Fewer rows than workers: empty partitions everywhere."""
        self.run_all(WorkloadSpec(
            sigma_t=0.5, sigma_l=0.5, s_t=0.5, s_l=0.5,
            t_rows=40, l_rows=80, n_keys=10, seed=9,
        ))

    def test_single_join_key(self):
        self.run_all(WorkloadSpec(
            sigma_t=0.5, sigma_l=0.5, s_t=1.0, s_l=1.0,
            t_rows=500, l_rows=1_000, n_keys=1, seed=10,
        ))


class TestPropertyBasedEquivalence:
    @given(
        sigma_t=st.sampled_from([0.05, 0.1, 0.3, 0.8]),
        sigma_l=st.sampled_from([0.05, 0.2, 0.5]),
        s_l=st.sampled_from([0.1, 0.3, 0.7]),
        seed=st.integers(0, 10_000),
        name=st.sampled_from(ALL_ALGORITHMS),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_workloads(self, sigma_t, sigma_l, s_l, seed, name):
        from hypothesis import assume

        from repro.errors import WorkloadError

        spec = WorkloadSpec(
            sigma_t=sigma_t, sigma_l=sigma_l, s_l=s_l,
            t_rows=2_000, l_rows=8_000, n_keys=64, n_urls=40, seed=seed,
        )
        try:
            workload = generate_workload(spec)
        except WorkloadError:
            assume(False)  # explicitly-rejected infeasible combination
            return
        query = build_paper_query(workload)
        warehouse = build_test_warehouse(workload)
        expected = oracle.oracle_execute(
            workload.t_table, workload.l_table, query
        )
        result = algorithm_by_name(name).run(warehouse, query)
        oracle.assert_equivalent(result.result, expected, label=name)


class TestAsymmetricClusters:
    """Correctness when the two clusters have unequal worker counts —
    exercises the grouped-ingest and routing paths for m != n."""

    @pytest.mark.parametrize("db_workers,db_servers,hdfs_nodes", [
        (10, 2, 30),   # fewer DB workers than JEN workers
        (30, 5, 8),    # more DB workers than JEN workers
        (7, 7, 13),    # odd, coprime counts
    ])
    def test_all_algorithms_on_odd_clusters(self, db_workers, db_servers,
                                            hdfs_nodes):
        from repro import HybridWarehouse, default_config
        from repro.config import ClusterConfig
        from dataclasses import replace

        spec = WorkloadSpec(
            sigma_t=0.2, sigma_l=0.3, s_l=0.3,
            t_rows=4_000, l_rows=20_000, n_keys=80, seed=21,
        )
        workload = generate_workload(spec)
        query = build_paper_query(workload)
        config = replace(
            default_config(scale=1 / 50_000),
            cluster=ClusterConfig(
                db_workers=db_workers,
                db_servers=db_servers,
                hdfs_nodes=hdfs_nodes,
            ),
        )
        warehouse = HybridWarehouse(config)
        warehouse.load_db_table("T", workload.t_table, "uniqKey")
        warehouse.load_hdfs_table("L", workload.l_table, "parquet")
        expected = oracle.oracle_execute(
            workload.t_table, workload.l_table, query
        )
        for name in ALL_ALGORITHMS:
            result = algorithm_by_name(name).run(warehouse, query)
            oracle.assert_equivalent(result.result, expected, label=name)
