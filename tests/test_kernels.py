"""Differential battery for the vectorised kernel layer.

Every kernel in :mod:`repro.kernels` must be *bit-identical* to its
naive reference formulation.  These tests pin that equivalence on
seeded grids of adversarial inputs — empty arrays, all-duplicate keys,
single keys, out-of-range destinations, both Bloom insert code paths —
so a kernel can never buy speed with a semantics change.
"""

import numpy as np
import pytest

import repro.kernels as kernels
from repro.kernels import (
    JoinBuildIndex,
    kernels_enabled,
    partition_indices,
    partition_table,
    popcount,
    probe_join,
    scatter_or,
    set_kernels_enabled,
)
from repro.kernels import test_bits as kernel_test_bits
from repro.kernels import bloomops
from repro.kernels.reference import (
    naive_join_indices,
    naive_partition_indices,
    naive_partition_table,
    naive_popcount,
    naive_scatter_or,
    naive_sorted_join,
    naive_test_bits,
)
from repro.core.bloom import BloomFilter, probe_and_insert
from repro.errors import TableError
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table


def _assert_tables_equal(actual, expected):
    assert actual.schema.names == expected.schema.names
    assert actual.num_rows == expected.num_rows
    for name in expected.schema.names:
        np.testing.assert_array_equal(actual.column(name),
                                      expected.column(name))


def _random_table(rng, rows):
    schema = Schema([
        Column("k", DataType.INT64),
        Column("v", DataType.INT32),
        Column("w", DataType.FLOAT64),
        Column("s", DataType.DICT_STRING, 16),
    ])
    return Table(schema, {
        "k": rng.integers(0, max(1, rows // 3 + 1), rows).astype(np.int64),
        "v": rng.integers(-50, 50, rows).astype(np.int32),
        "w": rng.random(rows),
        "s": rng.integers(0, 4, rows).astype(np.int32),
    }, {"s": np.array(["a", "b", "c", "d"], dtype=object)})


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
class TestPartition:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("rows,parts", [
        (0, 4), (1, 1), (1, 7), (97, 3), (1000, 30), (512, 300),
    ])
    def test_indices_match_reference(self, seed, rows, parts):
        rng = np.random.default_rng(seed)
        assignments = rng.integers(0, parts, rows).astype(np.int64)
        expected = naive_partition_indices(assignments, parts)
        actual = partition_indices(assignments, parts)
        assert len(actual) == len(expected) == parts
        for got, want in zip(actual, expected):
            np.testing.assert_array_equal(got, want)

    def test_out_of_range_assignments_dropped(self):
        assignments = np.array([-3, 0, 5, 1, 99, 1, -1, 4], dtype=np.int64)
        expected = naive_partition_indices(assignments, 5)
        actual = partition_indices(assignments, 5)
        for got, want in zip(actual, expected):
            np.testing.assert_array_equal(got, want)

    def test_all_rows_one_destination(self):
        assignments = np.full(400, 2, dtype=np.int64)
        actual = partition_indices(assignments, 4)
        np.testing.assert_array_equal(actual[2], np.arange(400))
        assert all(actual[d].size == 0 for d in (0, 1, 3))

    @pytest.mark.parametrize("seed", [3, 4])
    @pytest.mark.parametrize("rows,parts", [
        (0, 3), (1, 1), (230, 7), (999, 30),
    ])
    def test_tables_match_reference(self, seed, rows, parts):
        rng = np.random.default_rng(seed)
        table = _random_table(rng, rows)
        assignments = rng.integers(0, parts, rows).astype(np.int64)
        expected = naive_partition_table(table, assignments, parts)
        actual = partition_table(table, assignments, parts)
        for got, want in zip(actual, expected):
            _assert_tables_equal(got, want)

    def test_tables_many_partitions_general_path(self):
        # > uint16 range forces the comparison-sort path.
        rng = np.random.default_rng(5)
        parts = (1 << 16) + 10
        assignments = rng.integers(0, parts, 500).astype(np.int64)
        expected = naive_partition_indices(assignments, parts)
        actual = partition_indices(assignments, parts)
        occupied = np.flatnonzero(np.bincount(assignments, minlength=parts))
        for d in occupied[:50]:
            np.testing.assert_array_equal(actual[d], expected[d])

    def test_length_mismatch_rejected(self):
        table = _random_table(np.random.default_rng(0), 10)
        with pytest.raises(ValueError):
            partition_table(table, np.zeros(9, dtype=np.int64), 4)

    def test_disabled_routes_to_reference(self):
        rng = np.random.default_rng(6)
        assignments = rng.integers(0, 8, 100).astype(np.int64)
        previous = set_kernels_enabled(False)
        try:
            assert not kernels_enabled()
            off = partition_indices(assignments, 8)
        finally:
            set_kernels_enabled(previous)
        assert kernels_enabled()
        on = partition_indices(assignments, 8)
        for got, want in zip(off, on):
            np.testing.assert_array_equal(got, want)


# ----------------------------------------------------------------------
# Bloom word ops
# ----------------------------------------------------------------------
class TestBloomOps:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("num_words,num_positions", [
        (1, 0), (1, 1), (4, 1000), (64, 5000), (1024, 50_000),
    ])
    def test_scatter_or_matches_reference(self, seed, num_words,
                                          num_positions):
        rng = np.random.default_rng(seed)
        positions = rng.integers(
            0, num_words * 64, num_positions).astype(np.uint64)
        expected = np.zeros(num_words, dtype=np.uint64)
        naive_scatter_or(expected, positions)
        actual = np.zeros(num_words, dtype=np.uint64)
        scatter_or(actual, positions)
        np.testing.assert_array_equal(actual, expected)

    def test_scatter_or_all_duplicates(self):
        positions = np.full(10_000, 129, dtype=np.uint64)
        words = np.zeros(4, dtype=np.uint64)
        scatter_or(words, positions)
        expected = np.zeros(4, dtype=np.uint64)
        expected[2] = np.uint64(1) << np.uint64(1)
        np.testing.assert_array_equal(words, expected)

    def test_scatter_or_fallback_path(self, monkeypatch):
        # Shrink the presence-array cap so the sort+reduceat fallback
        # runs, and check it is bit-identical too.
        monkeypatch.setattr(bloomops, "_PACKBITS_MAX_WORDS", 0)
        rng = np.random.default_rng(7)
        positions = rng.integers(0, 256 * 64, 20_000).astype(np.uint64)
        expected = np.zeros(256, dtype=np.uint64)
        naive_scatter_or(expected, positions)
        actual = np.zeros(256, dtype=np.uint64)
        scatter_or(actual, positions)
        np.testing.assert_array_equal(actual, expected)

    def test_scatter_or_preserves_existing_bits(self):
        words = np.array([np.uint64(0b1010), np.uint64(0)], dtype=np.uint64)
        scatter_or(words, np.array([0, 64], dtype=np.uint64))
        assert words[0] == np.uint64(0b1011)
        assert words[1] == np.uint64(1)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("num_hashes", [1, 2, 5])
    def test_test_bits_matches_reference(self, seed, num_hashes):
        rng = np.random.default_rng(seed)
        words = rng.integers(0, np.iinfo(np.uint64).max, 64,
                             dtype=np.uint64)
        positions = rng.integers(
            0, 64 * 64, (num_hashes, 3000)).astype(np.uint64)
        np.testing.assert_array_equal(
            kernel_test_bits(words, positions),
            naive_test_bits(words, positions),
        )

    def test_test_bits_empty(self):
        words = np.zeros(2, dtype=np.uint64)
        positions = np.empty((2, 0), dtype=np.uint64)
        assert kernel_test_bits(words, positions).shape == (0,)

    def test_test_bits_none_survive_first_hash(self):
        # Empty filter rejects every key on hash 0; the short-circuit
        # must not probe further rows, and must still agree.
        words = np.zeros(8, dtype=np.uint64)
        positions = np.arange(10, dtype=np.uint64).reshape(2, 5)
        np.testing.assert_array_equal(
            kernel_test_bits(words, positions),
            naive_test_bits(words, positions),
        )

    @pytest.mark.parametrize("num_words", [0, 1, 7, 1000])
    def test_popcount_matches_reference(self, num_words):
        rng = np.random.default_rng(num_words)
        words = rng.integers(0, np.iinfo(np.uint64).max, num_words,
                             dtype=np.uint64)
        assert popcount(words) == naive_popcount(words)

    def test_popcount_lookup_table_path(self, monkeypatch):
        monkeypatch.setattr(bloomops, "_HAVE_BITWISE_COUNT", False)
        rng = np.random.default_rng(11)
        words = rng.integers(0, np.iinfo(np.uint64).max, 333,
                             dtype=np.uint64)
        assert popcount(words) == naive_popcount(words)

    def test_bloom_filter_round_trip(self):
        bloom = BloomFilter(1 << 12, num_hashes=2, seed=7)
        keys = np.arange(500, dtype=np.int64) % 100  # heavy duplicates
        bloom.add(keys)
        assert bloom.contains(keys).all()
        assert bloom.bits_set() == naive_popcount(bloom._words)

    def test_probe_and_insert_equals_contains_then_add(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 200, 1000).astype(np.int64)
        probe = BloomFilter(1 << 10, num_hashes=2, seed=7)
        probe.add(rng.integers(0, 100, 300).astype(np.int64))

        fused_insert = BloomFilter(1 << 11, num_hashes=2, seed=9)
        mask = probe_and_insert(keys, probe, fused_insert)

        manual_insert = BloomFilter(1 << 11, num_hashes=2, seed=9)
        expected_mask = probe.contains(keys)
        manual_insert.add(keys[expected_mask])

        np.testing.assert_array_equal(mask, expected_mask)
        np.testing.assert_array_equal(
            fused_insert._words, manual_insert._words)


# ----------------------------------------------------------------------
# Join build index
# ----------------------------------------------------------------------
class TestJoinBuildIndex:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("build_rows,probe_rows", [
        (0, 10), (10, 0), (1, 1), (50, 200), (300, 300),
    ])
    def test_probe_matches_references(self, seed, build_rows, probe_rows):
        rng = np.random.default_rng(seed)
        build = rng.integers(0, 40, build_rows).astype(np.int64)
        probe = rng.integers(0, 40, probe_rows).astype(np.int64)
        b1, p1 = JoinBuildIndex(build).probe(probe)
        b2, p2 = naive_sorted_join(build, probe)
        b3, p3 = naive_join_indices(build, probe)
        np.testing.assert_array_equal(b1, b2)
        np.testing.assert_array_equal(p1, p2)
        np.testing.assert_array_equal(b1, b3)
        np.testing.assert_array_equal(p1, p3)

    def test_all_duplicate_keys_multiply_out(self):
        build = np.zeros(7, dtype=np.int64)
        probe = np.zeros(3, dtype=np.int64)
        b, p = JoinBuildIndex(build).probe(probe)
        assert len(b) == 21  # 7 build rows x 3 probe rows
        b_naive, p_naive = naive_join_indices(build, probe)
        np.testing.assert_array_equal(b, b_naive)
        np.testing.assert_array_equal(p, p_naive)

    def test_matches_identity_and_value(self):
        keys = np.array([3, 1, 2], dtype=np.int64)
        index = JoinBuildIndex(keys)
        assert index.matches(keys)
        assert index.matches(keys.copy())          # equal values
        assert not index.matches(keys[:2])          # different shape
        assert not index.matches(np.array([3, 1, 9], dtype=np.int64))

    def test_probe_join_reuses_matching_index(self):
        rng = np.random.default_rng(5)
        build = rng.integers(0, 20, 100).astype(np.int64)
        probe = rng.integers(0, 20, 100).astype(np.int64)
        index = JoinBuildIndex(build)
        b1, p1 = probe_join(build, probe, build_index=index)
        b2, p2 = probe_join(build, probe)
        np.testing.assert_array_equal(b1, b2)
        np.testing.assert_array_equal(p1, p2)

    def test_probe_join_rejects_stale_index(self):
        build = np.array([1, 2, 3], dtype=np.int64)
        stale = JoinBuildIndex(np.array([9, 9, 9], dtype=np.int64))
        b, p = probe_join(build, np.array([2], dtype=np.int64),
                          build_index=stale)
        np.testing.assert_array_equal(b, [1])
        np.testing.assert_array_equal(p, [0])

    def test_probe_join_disabled_uses_reference(self):
        build = np.array([5, 5, 1], dtype=np.int64)
        probe = np.array([5, 1, 7], dtype=np.int64)
        previous = set_kernels_enabled(False)
        try:
            off = probe_join(build, probe)
        finally:
            set_kernels_enabled(previous)
        on = probe_join(build, probe)
        np.testing.assert_array_equal(off[0], on[0])
        np.testing.assert_array_equal(off[1], on[1])


# ----------------------------------------------------------------------
# Table fast paths touched by the kernels
# ----------------------------------------------------------------------
class TestTableFastPaths:
    def test_concat_single_input_is_identity(self):
        table = _random_table(np.random.default_rng(0), 20)
        assert Table.concat([table]) is table

    def test_concat_single_non_empty_survivor(self):
        table = _random_table(np.random.default_rng(1), 20)
        empty = table.slice(0, 0)
        assert Table.concat([empty, table, empty]) is table

    def test_filter_rejects_integer_mask(self):
        table = _random_table(np.random.default_rng(2), 10)
        with pytest.raises(TableError):
            table.filter(np.array([0, 2, 4], dtype=np.int64))

    def test_view_derivations_match_validating_constructor(self):
        table = _random_table(np.random.default_rng(3), 50)
        taken = table.take(np.array([5, 1, 1, 40], dtype=np.int64))
        rebuilt = Table(
            taken.schema,
            {name: taken.column(name) for name in taken.schema.names},
            {"s": taken.dictionary("s")},
        )
        _assert_tables_equal(taken, rebuilt)
        assert taken.num_rows == 4
        sliced = table.slice(10, 20)
        assert sliced.num_rows == 10
        projected = table.project(["v", "k"])
        assert projected.schema.names == ("v", "k")
        assert projected.num_rows == 50
        renamed = table.rename({"k": "key"})
        assert renamed.schema.names == ("key", "v", "w", "s")
        assert renamed.num_rows == 50

    def test_set_kernels_enabled_returns_previous(self):
        assert kernels.kernels_enabled()
        previous = set_kernels_enabled(False)
        assert previous is True
        assert set_kernels_enabled(previous) is False
        assert kernels.kernels_enabled()
