"""Tests for the SQL lexer and parser."""

import pytest

from repro.sql.ast import (
    Aggregate,
    BinaryOp,
    ColumnRef,
    FuncCall,
    Literal,
)
from repro.sql.lexer import SqlError, TokenType, tokenize
from repro.sql.parser import parse_select


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a.b, count(*) FROM t WHERE x <= 10")
        kinds = [t.type for t in tokens]
        assert kinds[0] is TokenType.KEYWORD
        assert kinds[-1] is TokenType.END

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_multichar_operators(self):
        tokens = tokenize("a <= b >= c <> d != e")
        operators = [t.value for t in tokens
                     if t.type is TokenType.OPERATOR]
        assert operators == ["<=", ">=", "<>", "!="]

    def test_string_literal(self):
        tokens = tokenize("region = 'East Coast'")
        strings = [t for t in tokens if t.type is TokenType.STRING]
        assert strings[0].value == "East Coast"

    def test_unterminated_string(self):
        with pytest.raises(SqlError, match="unterminated"):
            tokenize("x = 'oops")

    def test_unexpected_character(self):
        with pytest.raises(SqlError, match="unexpected character"):
            tokenize("a @ b")

    def test_numbers(self):
        tokens = tokenize("x <= 12 AND y >= 3.5")
        numbers = [t.value for t in tokens if t.type is TokenType.NUMBER]
        assert numbers == ["12", "3.5"]

    def test_semicolon_ignored(self):
        tokens = tokenize("SELECT a FROM t;")
        assert tokens[-1].type is TokenType.END


class TestParser:
    PAPER_SQL = """
        SELECT extract_group(L.groupByExtractCol), COUNT(*)
        FROM T, L
        WHERE T.corPred <= 17 AND T.indPred <= 42
          AND L.corPred <= 99 AND L.indPred <= 31
          AND T.joinKey = L.joinKey
          AND days(T.predAfterJoin) - days(L.predAfterJoin) >= 0
          AND days(T.predAfterJoin) - days(L.predAfterJoin) <= 1
        GROUP BY extract_group(L.groupByExtractCol)
    """

    def test_paper_query_shape(self):
        statement = parse_select(self.PAPER_SQL)
        assert len(statement.tables) == 2
        assert len(statement.where) == 7
        assert len(statement.group_by) == 1
        assert len(statement.select_items) == 2
        aggregate = statement.select_items[1].expression
        assert isinstance(aggregate, Aggregate)
        assert aggregate.function == "count"
        assert aggregate.argument is None

    def test_qualified_and_bare_columns(self):
        statement = parse_select(
            "SELECT a FROM t, l WHERE t.x = l.y AND z <= 1 GROUP BY a"
        )
        join = statement.where[0]
        assert join.left == ColumnRef("t", "x")
        assert join.right == ColumnRef("l", "y")
        local = statement.where[1]
        assert local.left == ColumnRef(None, "z")
        assert local.right == Literal(1)

    def test_aliases(self):
        statement = parse_select(
            "SELECT a AS grp, COUNT(*) AS n FROM t x, l AS y "
            "WHERE t.k = l.k GROUP BY a"
        )
        assert statement.select_items[0].alias == "grp"
        assert statement.select_items[1].alias == "n"
        assert statement.tables[0].binding_name() == "x"
        assert statement.tables[1].binding_name() == "y"

    def test_date_difference_expression(self):
        statement = parse_select(
            "SELECT a, COUNT(*) FROM t, l WHERE "
            "days(t.d) - days(l.d) >= 0 GROUP BY a"
        )
        comparison = statement.where[0]
        assert isinstance(comparison.left, BinaryOp)
        assert comparison.left.op == "-"
        assert isinstance(comparison.left.left, FuncCall)
        assert comparison.left.left.name == "days"

    def test_operator_normalisation(self):
        statement = parse_select(
            "SELECT a, COUNT(*) FROM t, l WHERE a = 1 AND b <> 2 "
            "GROUP BY a"
        )
        assert statement.where[0].op == "=="
        assert statement.where[1].op == "!="

    def test_sum_min_max_avg(self):
        statement = parse_select(
            "SELECT g, SUM(v), MIN(v), MAX(v), AVG(v) "
            "FROM t, l WHERE t.k = l.k GROUP BY g"
        )
        functions = [
            item.expression.function
            for item in statement.select_items[1:]
        ]
        assert functions == ["sum", "min", "max", "avg"]

    def test_or_rejected(self):
        with pytest.raises(SqlError, match="OR is not supported"):
            parse_select(
                "SELECT a, COUNT(*) FROM t, l "
                "WHERE a = 1 OR b = 2 GROUP BY a"
            )

    def test_not_rejected(self):
        with pytest.raises(SqlError, match="NOT is not supported"):
            parse_select(
                "SELECT a, COUNT(*) FROM t, l WHERE NOT a = 1 GROUP BY a"
            )

    def test_trailing_garbage(self):
        with pytest.raises(SqlError, match="trailing"):
            parse_select("SELECT a FROM t, l GROUP BY a LIMIT 5 extra")

    def test_order_by_and_limit_parse(self):
        statement = parse_select(
            "SELECT a, COUNT(*) FROM t, l WHERE t.k = l.k GROUP BY a "
            "ORDER BY COUNT(*) DESC, a LIMIT 7"
        )
        assert len(statement.order_by) == 2
        assert statement.order_by[0].descending
        assert not statement.order_by[1].descending
        assert statement.limit == 7

    def test_negative_or_float_limit_rejected(self):
        with pytest.raises(SqlError, match="integer"):
            parse_select(
                "SELECT a, COUNT(*) FROM t, l GROUP BY a LIMIT 1.5"
            )

    def test_missing_comparison_operator(self):
        with pytest.raises(SqlError, match="comparison operator"):
            parse_select("SELECT a FROM t, l WHERE a 1 GROUP BY a")

    def test_parenthesised_expression(self):
        statement = parse_select(
            "SELECT a, COUNT(*) FROM t, l WHERE (t.d - l.d) <= 1 "
            "GROUP BY a"
        )
        assert isinstance(statement.where[0].left, BinaryOp)
