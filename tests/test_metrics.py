"""Unit tests for the service plane's organs: metrics, semantic cache
keys, bounded LRU caches and the execution feedback loop."""

from __future__ import annotations

import pytest

from repro.core.advisor import WorkloadEstimate
from repro.core.joins.base import JoinResult, JoinStats
from repro.errors import ServiceError
from repro.relational.expressions import compare
from repro.service import (
    FeedbackLoop,
    MetricsRegistry,
    Observation,
    ResultCache,
    observe,
    plan_key,
    predicate_key,
)
from repro.sim.replay import replay_trace
from repro.sim.trace import Trace


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestCounter:
    def test_increments(self):
        counter = MetricsRegistry().counter("hits")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_decrease(self):
        counter = MetricsRegistry().counter("hits")
        with pytest.raises(ServiceError):
            counter.inc(-1)


class TestGauge:
    def test_tracks_high_watermark(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value == 1
        assert gauge.high == 5


class TestHistogram:
    def test_exact_percentiles(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in (5, 1, 4, 2, 3):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.mean == pytest.approx(3.0)
        assert histogram.p50 == 3
        assert histogram.p95 == 5
        assert histogram.percentile(0) == 1

    def test_empty_histogram(self):
        histogram = MetricsRegistry().histogram("latency")
        assert histogram.p50 == 0.0 and histogram.mean == 0.0

    def test_percentile_bounds(self):
        histogram = MetricsRegistry().histogram("latency")
        with pytest.raises(ServiceError):
            histogram.percentile(101)


class TestConcurrency:
    """Instruments must survive concurrent mutation without lost
    updates — the parallel backend's callback threads and embedders'
    service threads share one registry."""

    THREADS = 8
    ITERATIONS = 2_000

    def _hammer(self, work):
        import threading

        barrier = threading.Barrier(self.THREADS)

        def body():
            barrier.wait()
            for _ in range(self.ITERATIONS):
                work()

        threads = [threading.Thread(target=body)
                   for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_counter_concurrent_increments(self):
        counter = MetricsRegistry().counter("hits")
        self._hammer(lambda: counter.inc(1.0))
        assert counter.value == self.THREADS * self.ITERATIONS

    def test_gauge_concurrent_inc_dec_balances(self):
        gauge = MetricsRegistry().gauge("depth")

        def pulse():
            gauge.inc()
            gauge.dec()

        self._hammer(pulse)
        assert gauge.value == 0
        assert 1 <= gauge.high <= self.THREADS

    def test_histogram_concurrent_observe(self):
        histogram = MetricsRegistry().histogram("latency")
        self._hammer(lambda: histogram.observe(1.0))
        assert histogram.count == self.THREADS * self.ITERATIONS
        assert histogram.p50 == 1.0

    def test_registry_concurrent_get_or_create(self):
        import threading

        registry = MetricsRegistry()
        barrier = threading.Barrier(self.THREADS)
        seen = []

        def body():
            barrier.wait()
            seen.append(registry.counter("shared"))

        threads = [threading.Thread(target=body)
                   for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(instrument is seen[0] for instrument in seen)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ServiceError, match="already registered"):
            registry.gauge("x")

    def test_snapshot_and_render(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2)
        registry.histogram("h").observe(1.0)
        snapshot = registry.as_dict()
        assert snapshot["c"] == 1
        assert snapshot["g"] == {"value": 2.0, "high": 2.0}
        assert snapshot["h"]["count"] == 1
        assert "c" in registry.render()


# ----------------------------------------------------------------------
# Semantic keys
# ----------------------------------------------------------------------
class TestSemanticKeys:
    def test_conjunction_is_order_insensitive(self):
        left = compare("a", "<=", 5) & compare("b", ">", 3)
        right = compare("b", ">", 3) & compare("a", "<=", 5)
        assert predicate_key(left) == predicate_key(right)

    def test_literals_participate_by_default(self):
        assert predicate_key(compare("a", "<=", 5)) \
            != predicate_key(compare("a", "<=", 6))

    def test_template_key_strips_literals(self):
        narrow = compare("a", "<=", 5) & compare("b", ">", 3)
        wide = compare("a", "<=", 9) & compare("b", ">", 7)
        assert predicate_key(narrow, literals=False) \
            == predicate_key(wide, literals=False)

    def test_plan_key_covers_result_shape(self, paper_workload,
                                          paper_query):
        from repro.service import build_template_query

        same = build_template_query(paper_workload, 1.0, 1.0)
        narrowed = build_template_query(paper_workload, 1.0, 0.5)
        assert plan_key(same) == plan_key(paper_query)
        assert plan_key(narrowed) != plan_key(paper_query)
        # Different constants, same template.
        assert plan_key(narrowed, literals=False) \
            == plan_key(paper_query, literals=False)


# ----------------------------------------------------------------------
# Bounded LRU cache
# ----------------------------------------------------------------------
class TestLruCache:
    def test_hit_miss_and_eviction(self):
        cache = ResultCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes recency
        cache.put("c", 3)  # evicts "b", the least recently used
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions.value == 1
        assert cache.hit_rate() == pytest.approx(3 / 5)

    def test_invalidate(self):
        cache = ResultCache(capacity=4)
        cache.put("a", 1)
        cache.invalidate("a")
        assert cache.get("a") is None
        cache.put("b", 2)
        cache.invalidate()
        assert len(cache) == 0

    def test_capacity_validated(self):
        with pytest.raises(ServiceError):
            ResultCache(capacity=0)


# ----------------------------------------------------------------------
# Feedback loop
# ----------------------------------------------------------------------
def _fake_run(sigma_t=0.1, sigma_l=0.2):
    """A minimal JoinResult carrying the observed selectivities."""
    trace = Trace("fake")
    trace.add("db_filter", "db_scan", 5.0, tuples=1000.0 * sigma_t)
    stats = JoinStats(
        db_rows_scanned=1000.0,
        hdfs_rows_scanned=5000.0,
        hdfs_rows_after_predicates=5000.0 * sigma_l,
        join_output_tuples=42.0,
    )
    return JoinResult(algorithm="zigzag", result=None, stats=stats,
                      trace=trace, timing=replay_trace(trace),
                      scale_up=1.0)


def _estimate(sigma_t, sigma_l):
    return WorkloadEstimate(t_rows=1e6, l_rows=1e7,
                            sigma_t=sigma_t, sigma_l=sigma_l,
                            s_t=0.2, s_l=0.1)


class TestFeedbackLoop:
    def test_observe_extracts_selectivities(self):
        observation = observe(_fake_run(sigma_t=0.1, sigma_l=0.2))
        assert isinstance(observation, Observation)
        assert observation.sigma_t == pytest.approx(0.1)
        assert observation.sigma_l == pytest.approx(0.2)
        assert observation.join_output_tuples == 42.0

    def test_exact_plan_overrides_estimate(self):
        loop = FeedbackLoop(alpha=1.0)
        loop.record("plan", "template", _estimate(0.05, 0.1), _fake_run())
        refined = loop.refine("plan", "template", _estimate(0.05, 0.1))
        assert refined.sigma_t == pytest.approx(0.1)
        assert refined.sigma_l == pytest.approx(0.2)
        assert loop.observations == 1 and loop.known_plans() == 1

    def test_template_ratio_corrects_new_constants(self):
        loop = FeedbackLoop(alpha=1.0)
        # Observed is 2x the estimate on both sides.
        loop.record("plan", "template", _estimate(0.05, 0.1), _fake_run())
        refined = loop.refine("other-plan", "template",
                              _estimate(0.3, 0.2))
        assert refined.sigma_t == pytest.approx(0.6)
        assert refined.sigma_l == pytest.approx(0.4)

    def test_refinement_clamped_to_legal_range(self):
        loop = FeedbackLoop(alpha=1.0)
        loop.record("plan", "template", _estimate(0.01, 0.01), _fake_run())
        refined = loop.refine("other-plan", "template",
                              _estimate(0.9, 0.9))
        assert refined.sigma_t <= 1.0 and refined.sigma_l <= 1.0

    def test_unknown_plan_untouched(self):
        loop = FeedbackLoop()
        estimate = _estimate(0.3, 0.3)
        assert loop.refine("nope", "nope", estimate) is estimate

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            FeedbackLoop(alpha=0.0)
