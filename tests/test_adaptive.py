"""The adaptive plane: mid-query re-optimization (repro.adaptive).

The heart of the tier is the forced-switch scenario from the paper's
estimate-error discussion: a seeded 10x sigma_L underestimate makes the
advisor mispick the DB-side plan, the runtime statistics collected
during the scan reveal the truth at the 25% checkpoint, and the run
switches to the HDFS-side plan — producing the oracle's exact rows
while the trace honestly pays for the abandoned work and the switch.

The rest covers the guard rails: no false switch on accurate
estimates, collect-only mode under fault plans and spent switch
budgets, re-optimizer unit behaviour (hysteresis, min-progress,
never-switch-back), banked-artifact reuse, the execution-backend
fallback observability satellite, and the service-plane integration
(metrics + feedback).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import parallel
from repro.adaptive import (
    AdaptiveConfig,
    AdaptiveJoin,
    ArtifactBank,
    ReOptimizer,
    RuntimeStatsCollector,
    hooks,
)
from repro.core.advisor import JoinAdvisor
from repro.core.joins import algorithm_by_name
from repro.faults import FaultPlan
from repro.query.stats import sample_workload_estimate
from repro.testkit import generator, oracle

#: A seed whose workload flips db(BF) -> repartition once the true
#: sigma_L is observed (found by sweeping the generator; the advisor
#: mispicks the DB side under a 10x sigma_L underestimate).
FLIP_SEED = 2005
#: The paper-style estimate error: sigma_L underestimated 10x.
UNDERESTIMATE = (1.0, 0.1)
WORKERS = 4
FORMAT = "parquet"


@pytest.fixture(scope="module")
def flip_case():
    return generator.generate_data_case(FLIP_SEED)


def _warehouse(case):
    return generator.build_cell_warehouse(case, WORKERS, FORMAT)


@pytest.fixture(scope="module")
def switched_run(flip_case):
    """One forced-switch adaptive run, shared by the assertions below."""
    warehouse = _warehouse(flip_case)
    result = AdaptiveJoin(estimate_errors=UNDERESTIMATE).run(
        warehouse, flip_case.query
    )
    return result


# ----------------------------------------------------------------------
# The acceptance scenario: forced switch, oracle-identical
# ----------------------------------------------------------------------
class TestForcedSwitch:
    def test_advisor_mispicks_under_the_underestimate(self, flip_case):
        warehouse = _warehouse(flip_case)
        estimate = sample_workload_estimate(warehouse, flip_case.query)
        advisor = JoinAdvisor(warehouse.config)
        wrong = dataclasses.replace(
            estimate, sigma_l=max(estimate.sigma_l * 0.1, 1e-5)
        )
        assert advisor.decide(wrong).best.startswith("db")
        assert not advisor.decide(estimate).best.startswith("db")

    def test_switches_mid_query(self, switched_run):
        report = switched_run.trace.metadata["adaptive"]
        assert report["switched"]
        assert report["initial_algorithm"].startswith("db")
        assert not report["final_algorithm"].startswith("db")
        (switch,) = report["switches"]
        assert 0.0 < switch["at_progress"] < 1.0
        assert switch["target_seconds"] < switch["projected_remaining"]

    def test_result_identical_to_oracle(self, switched_run, flip_case):
        diff = oracle.compare_tables(
            switched_run.result, flip_case.oracle_rows(), label="adaptive"
        )
        assert diff is None

    def test_label_names_the_path(self, switched_run):
        report = switched_run.trace.metadata["adaptive"]
        path = "->".join(report["path"])
        assert switched_run.algorithm == f"adaptive[{path}]"

    def test_abandoned_work_is_priced_on_the_trace(self, switched_run):
        names = switched_run.trace.names()
        abandoned = [n for n in names if n.startswith("abandoned_")]
        assert "abandoned_startup" in abandoned
        assert "abandoned_db_filter" in abandoned
        assert "abandoned_hdfs_scan" in abandoned
        partial = switched_run.trace.phase("abandoned_hdfs_scan")
        assert partial.seconds > 0
        assert partial.tuples > 0

    def test_switch_penalty_is_a_trace_phase(self, switched_run):
        switch = switched_run.trace.phase("switch")
        assert switch.seconds == AdaptiveConfig().switch_penalty_seconds
        # The post-switch plan starts from the switch, not a fresh
        # startup: coordination is already up.
        assert "startup" not in switched_run.trace.names()

    def test_abandoned_rows_counted_as_discarded(self, switched_run):
        report = switched_run.trace.metadata["adaptive"]
        abandoned_rows = report["segments"][0]["rows_scanned"]
        assert abandoned_rows > 0
        assert switched_run.stats.hdfs_rows_discarded >= abandoned_rows

    def test_banked_t_prime_is_reused(self, switched_run):
        report = switched_run.trace.metadata["adaptive"]
        assert report["bank"]["db_filter_reuses"] >= 1
        db_filter = switched_run.trace.phase("db_filter")
        assert db_filter.seconds == 0.0
        assert "banked" in db_filter.description

    def test_adaptive_lands_between_the_static_plans(
            self, switched_run, flip_case):
        report = switched_run.trace.metadata["adaptive"]
        mispick = algorithm_by_name(report["initial_algorithm"]).run(
            _warehouse(flip_case), flip_case.query
        )
        correct = algorithm_by_name(report["final_algorithm"]).run(
            _warehouse(flip_case), flip_case.query
        )
        assert (correct.timing.total_seconds
                < switched_run.timing.total_seconds
                < mispick.timing.total_seconds)


# ----------------------------------------------------------------------
# Guard rails: when a switch must NOT happen
# ----------------------------------------------------------------------
class TestNoFalseSwitch:
    def test_accurate_estimates_never_switch(self, flip_case):
        result = AdaptiveJoin().run(_warehouse(flip_case), flip_case.query)
        report = result.trace.metadata["adaptive"]
        assert not report["switched"]
        assert result.algorithm == (
            f"adaptive[{report['final_algorithm']}]"
        )
        # Checkpoints still evaluated — and all voted to stay.
        assert report["evaluations"]
        assert oracle.compare_tables(
            result.result, flip_case.oracle_rows()) is None

    def test_unit_error_factors_never_switch(self, flip_case):
        result = AdaptiveJoin(estimate_errors=(1.0, 1.0)).run(
            _warehouse(flip_case), flip_case.query
        )
        assert not result.trace.metadata["adaptive"]["switched"]

    def test_fault_plan_runs_collect_only(self, flip_case):
        warehouse = _warehouse(flip_case)
        warehouse.arm_faults(FaultPlan.from_spec("crash:w2@scan"))
        try:
            result = AdaptiveJoin(estimate_errors=UNDERESTIMATE).run(
                warehouse, flip_case.query
            )
        finally:
            warehouse.disarm_faults()
        report = result.trace.metadata["adaptive"]
        assert not report["switched"]
        assert not report["evaluations"]  # checkpoints never consulted
        assert report["segments"][0]["rows_scanned"] > 0  # stats flowed
        assert oracle.compare_tables(
            result.result, flip_case.oracle_rows()) is None

    def test_zero_switch_budget_runs_collect_only(self, flip_case):
        config = AdaptiveConfig(max_switches=0)
        result = AdaptiveJoin(
            estimate_errors=UNDERESTIMATE, config=config
        ).run(_warehouse(flip_case), flip_case.query)
        assert not result.trace.metadata["adaptive"]["switched"]


# ----------------------------------------------------------------------
# Re-optimizer unit behaviour
# ----------------------------------------------------------------------
class TestReOptimizer:
    def _fixture(self, flip_case, **config_kwargs):
        warehouse = _warehouse(flip_case)
        estimate = sample_workload_estimate(warehouse, flip_case.query)
        wrong = dataclasses.replace(
            estimate, sigma_l=max(estimate.sigma_l * 0.1, 1e-5)
        )
        advisor = JoinAdvisor(warehouse.config)
        incumbent = advisor.decide(wrong).best
        collector = RuntimeStatsCollector()
        # Observations matching the true workload: half the scan done,
        # true sigma_L revealed.
        collector.db_rows_scanned = flip_case.t_table.num_rows
        collector.db_rows_out = int(
            flip_case.t_table.num_rows * estimate.sigma_t
        )
        collector.total_blocks = 10
        collector.blocks_done = 5
        collector.rows_scanned = flip_case.l_table.num_rows // 2
        collector.rows_after_predicates = int(
            collector.rows_scanned * estimate.sigma_l
        )
        reoptimizer = ReOptimizer(
            advisor, incumbent, wrong,
            config=AdaptiveConfig(**config_kwargs),
        )
        return collector, reoptimizer

    def test_observed_truth_triggers_a_switch(self, flip_case):
        collector, reoptimizer = self._fixture(flip_case)
        decision = reoptimizer.evaluate(collector, 0.5)
        assert decision is not None
        assert decision.target not in reoptimizer.exclude
        assert decision.observed_sigma_l == pytest.approx(
            collector.rows_after_predicates / collector.rows_scanned
        )

    def test_below_min_progress_never_fires(self, flip_case):
        collector, reoptimizer = self._fixture(flip_case, min_progress=0.9)
        assert reoptimizer.evaluate(collector, 0.5) is None
        # progress == 0.0 (the T' checkpoint) is exempt from the gate.
        collector.rows_scanned = 0
        collector.rows_after_predicates = 0
        assert reoptimizer.evaluate(collector, 0.0) is not None \
            or reoptimizer.evaluations

    def test_hysteresis_blocks_near_ties(self, flip_case):
        # An absurd hysteresis factor demands the alternative be ~free.
        collector, reoptimizer = self._fixture(flip_case, hysteresis=1e-6)
        assert reoptimizer.evaluate(collector, 0.5) is None

    def test_excluded_algorithms_are_never_targets(self, flip_case):
        collector, reoptimizer = self._fixture(flip_case)
        baseline = reoptimizer.evaluate(collector, 0.5)
        assert baseline is not None
        blocked = ReOptimizer(
            reoptimizer.advisor, reoptimizer.incumbent,
            reoptimizer.base_estimate, config=reoptimizer.config,
            exclude=frozenset({baseline.target}),
        )
        decision = blocked.evaluate(collector, 0.5)
        assert decision is None or decision.target != baseline.target

    def test_banked_t_prime_credits_alternatives(self, flip_case):
        collector, reoptimizer = self._fixture(flip_case)
        bank = ArtifactBank()
        bank.bank_db_filter("T", parts=[], matched=1)
        credited = ReOptimizer(
            reoptimizer.advisor, reoptimizer.incumbent,
            reoptimizer.base_estimate, config=reoptimizer.config,
            bank=bank,
        )
        plain = reoptimizer.evaluate(collector, 0.5)
        with_credit = credited.evaluate(collector, 0.5)
        assert plain is not None and with_credit is not None
        assert with_credit.target_seconds < plain.target_seconds


# ----------------------------------------------------------------------
# Hooks are inert outside an adaptive run
# ----------------------------------------------------------------------
class TestHookSeam:
    def test_hooks_are_inert_by_default(self):
        assert not hooks.adaptive_active()
        hooks.record_db_filter(10, 5)
        hooks.record_scan_block(10, 100.0, 5, 5, False)
        hooks.record_shuffle_partitions([1, 2, 3])
        hooks.checkpoint("t_prime_built")
        assert hooks.banked_bloom(("T", "k", 64)) is None
        assert hooks.banked_db_filter("T") is None

    def test_static_algorithms_untouched_by_the_seam(self, flip_case):
        warehouse = _warehouse(flip_case)
        result = algorithm_by_name("repartition").run(
            warehouse, flip_case.query
        )
        assert "adaptive" not in result.trace.metadata
        assert oracle.compare_tables(
            result.result, flip_case.oracle_rows()) is None


# ----------------------------------------------------------------------
# Satellite: execution-backend fallback observability
# ----------------------------------------------------------------------
class TestFallbackObservability:
    def test_adaptive_forces_sequential_scan_and_says_so(self, flip_case):
        warehouse = _warehouse(flip_case)
        previous = parallel.set_execution_backend("process", workers=2)
        try:
            result = AdaptiveJoin(estimate_errors=UNDERESTIMATE).run(
                warehouse, flip_case.query
            )
        finally:
            parallel.set_execution_backend(previous)
            parallel.shutdown_backend()
        fallbacks = result.trace.metadata["parallel_fallbacks"]
        assert ("jen.scan", "adaptive-active") in fallbacks
        assert result.trace.metadata["adaptive"]["switched"]
        assert oracle.compare_tables(
            result.result, flip_case.oracle_rows()) is None

    def test_fault_plan_fallback_reason_is_recorded(self, flip_case):
        warehouse = _warehouse(flip_case)
        warehouse.arm_faults(FaultPlan.from_spec("crash:w2@scan"))
        previous = parallel.set_execution_backend("process", workers=2)
        try:
            result = algorithm_by_name("repartition").run(
                warehouse, flip_case.query
            )
        finally:
            parallel.set_execution_backend(previous)
            parallel.shutdown_backend()
            warehouse.disarm_faults()
        fallbacks = result.trace.metadata["parallel_fallbacks"]
        assert ("jen.scan", "fault-plan-armed") in fallbacks

    def test_sequential_backend_records_nothing(self, flip_case):
        warehouse = _warehouse(flip_case)
        result = algorithm_by_name("repartition").run(
            warehouse, flip_case.query
        )
        assert "parallel_fallbacks" not in result.trace.metadata

    def test_drain_empties_the_event_buffer(self):
        parallel.record_fallback("test.site", "test-reason")
        # Self-gated: only records under the process backend.
        assert parallel.drain_fallback_events() == []


# ----------------------------------------------------------------------
# Satellite: the testkit's estimate-error axis
# ----------------------------------------------------------------------
class TestEstimateErrorAxis:
    def test_default_grid_carries_adaptive_error_cells(self):
        cells = [
            (case, cell) for case, cell in generator.default_grid()
            if cell.estimate_error is not None
        ]
        assert len(cells) >= len(generator.ESTIMATE_ERROR_AXIS)
        assert all(cell.algorithm == "adaptive" for _, cell in cells)
        labels = {cell.label() for _, cell in cells}
        assert any("esterr[1x,0.1x]" in label for label in labels)

    def test_error_cell_matches_oracle(self, flip_case):
        cell = generator.ConfigCell(
            "adaptive", workers=WORKERS,
            estimate_error=UNDERESTIMATE,
        )
        result = generator.run_cell(flip_case, cell)
        assert oracle.compare_tables(
            result, flip_case.oracle_rows(), label=cell.label()) is None

    def test_shrinker_resets_the_axis_by_default(self):
        from repro.testkit.shrink import _AXIS_DEFAULTS

        assert ("estimate_error", None) in _AXIS_DEFAULTS


# ----------------------------------------------------------------------
# Service plane: adaptive execution, metrics, feedback
# ----------------------------------------------------------------------
class TestServiceIntegration:
    def test_adaptive_runs_and_counts(self, flip_case):
        from repro.service import QueryService, ServiceConfig

        warehouse = _warehouse(flip_case)
        service = QueryService(
            warehouse, ServiceConfig(enable_adaptive=True)
        )
        outcome = service.execute(flip_case.query, algorithm="auto")
        assert outcome.status == "ok"
        assert outcome.algorithm.startswith("adaptive[")
        assert service.metrics.counter("adaptive.runs").value == 1
        assert oracle.compare_tables(
            outcome.result, flip_case.oracle_rows()) is None

    def test_observed_stats_feed_the_refinement_loop(self, flip_case):
        from repro.service import QueryService, ServiceConfig

        warehouse = _warehouse(flip_case)
        service = QueryService(
            warehouse, ServiceConfig(enable_adaptive=True)
        )
        service.execute(flip_case.query, algorithm="auto")
        assert service.metrics.counter(
            "feedback.observations").value >= 1

    def test_explicit_algorithm_bypasses_adaptive(self, flip_case):
        from repro.service import QueryService, ServiceConfig

        warehouse = _warehouse(flip_case)
        service = QueryService(
            warehouse, ServiceConfig(enable_adaptive=True)
        )
        outcome = service.execute(
            flip_case.query, algorithm="repartition"
        )
        assert outcome.status == "ok"
        assert outcome.algorithm == "repartition"
        assert service.metrics.counter("adaptive.runs").value == 0
