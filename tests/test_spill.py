"""Tests for Grace-hash spilling (the paper's Section 4.4 future work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import algorithm_by_name, default_config, reference_join
from repro.errors import JoinError
from repro.jen.spill import (
    fragment_hash_partition,
    plan_spill,
)
from tests.conftest import TEST_SCALE, build_test_warehouse


class TestSpillPlan:
    def test_unlimited_budget_never_spills(self):
        plan = plan_spill(10**9, 10**9, 0)
        assert not plan.spilled
        assert plan.spilled_tuples() == 0

    def test_fits_in_memory(self):
        plan = plan_spill(100, 200, 1000)
        assert plan.num_fragments == 1

    def test_fragment_count(self):
        plan = plan_spill(1000, 50, 300)
        assert plan.num_fragments == 4
        assert plan.spilled
        assert plan.spilled_tuples() == 1050


class TestFragmenting:
    def test_invalid_fragment_count(self):
        with pytest.raises(JoinError):
            fragment_hash_partition(np.array([1]), 0)

    def test_independent_of_agreed_hash(self):
        """Fragmenting must not correlate with the shuffle hash, or all
        rows of one worker would land in one fragment."""
        from repro.edw.partitioner import agreed_hash_partition

        keys = np.arange(20_000)
        shuffle = agreed_hash_partition(keys, 30)
        worker0_keys = keys[shuffle == 0]
        fragments = fragment_hash_partition(worker0_keys, 8)
        counts = np.bincount(fragments, minlength=8)
        assert counts.min() > 0.5 * counts.mean()

    @given(parts=st.integers(1, 10),
           keys=st.lists(st.integers(0, 100), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_co_alignment(self, parts, keys):
        """Equal keys on the two sides always share a fragment."""
        build = np.array(keys, dtype=np.int64)
        probe = np.array(keys[::-1], dtype=np.int64)
        build_frag = fragment_hash_partition(build, parts)
        probe_frag = fragment_hash_partition(probe, parts)
        by_key_build = dict(zip(build.tolist(), build_frag.tolist()))
        by_key_probe = dict(zip(probe.tolist(), probe_frag.tolist()))
        for key in set(keys):
            assert by_key_build[key] == by_key_probe[key]


class TestSpillingJoins:
    @pytest.mark.parametrize("name", ["repartition", "zigzag", "broadcast"])
    def test_spilled_join_matches_reference(self, name, paper_workload,
                                            paper_query):
        reference = reference_join(
            paper_workload.t_table, paper_workload.l_table, paper_query
        )
        # A budget of 40k paper-scale rows per worker forces fragmenting
        # at every tested sigma.
        config = default_config(scale=TEST_SCALE)
        from dataclasses import replace
        config = replace(config, jen_memory_budget_rows=4.0e5)
        warehouse = build_test_warehouse(paper_workload)
        warehouse.config = config
        result = algorithm_by_name(name).run(warehouse, paper_query)
        assert result.result.to_rows() == reference.to_rows()
        assert result.stats.spilled_tuples > 0
        assert "spill_io" in result.trace.names()

    def test_no_budget_means_no_spill(self, loaded_warehouse, paper_query):
        result = algorithm_by_name("repartition").run(
            loaded_warehouse, paper_query
        )
        assert result.stats.spilled_tuples == 0
        assert "spill_io" not in result.trace.names()

    def test_spilling_costs_simulated_time(self, paper_workload,
                                           paper_query):
        from dataclasses import replace
        baseline_wh = build_test_warehouse(paper_workload)
        baseline = algorithm_by_name("repartition").run(
            baseline_wh, paper_query
        ).total_seconds

        constrained_wh = build_test_warehouse(paper_workload)
        constrained_wh.config = replace(
            default_config(scale=TEST_SCALE), jen_memory_budget_rows=2.0e5
        )
        constrained = algorithm_by_name("repartition").run(
            constrained_wh, paper_query
        ).total_seconds
        assert constrained > baseline

    def test_tighter_budget_more_fragments(self, paper_workload,
                                           paper_query):
        from dataclasses import replace
        results = []
        for budget in (2.0e6, 2.0e5):
            warehouse = build_test_warehouse(paper_workload)
            warehouse.config = replace(
                default_config(scale=TEST_SCALE),
                jen_memory_budget_rows=budget,
            )
            result = algorithm_by_name("zigzag").run(
                warehouse, paper_query
            )
            results.append(result.stats.spilled_tuples)
        assert results[1] >= results[0]
