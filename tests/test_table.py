"""Unit tests for repro.relational.table."""

import numpy as np
import pytest

from repro.errors import TableError
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table, table_from_rows


def make_dict_table():
    schema = Schema([
        Column("k", DataType.INT32),
        Column("url", DataType.DICT_STRING, width_bytes=20),
    ])
    dictionary = np.array(["a.com", "b.com", "c.com"], dtype=object)
    return Table(
        schema,
        {"k": np.array([1, 2, 3, 1]), "url": np.array([0, 2, 1, 0])},
        {"url": dictionary},
    )


class TestConstruction:
    def test_basic(self, small_table):
        assert small_table.num_rows == 5
        assert len(small_table) == 5

    def test_missing_column_data(self):
        schema = Schema([Column("a", DataType.INT32)])
        with pytest.raises(TableError, match="missing data"):
            Table(schema, {})

    def test_extra_column_data_rejected(self):
        schema = Schema([Column("a", DataType.INT32)])
        with pytest.raises(TableError, match="unknown columns"):
            Table(schema, {"a": np.array([1]), "b": np.array([2])})

    def test_ragged_columns_rejected(self):
        schema = Schema([Column("a", DataType.INT32),
                         Column("b", DataType.INT32)])
        with pytest.raises(TableError, match="ragged"):
            Table(schema, {"a": np.array([1, 2]), "b": np.array([1])})

    def test_dict_column_requires_dictionary(self):
        schema = Schema([Column("s", DataType.DICT_STRING)])
        with pytest.raises(TableError, match="no dictionary"):
            Table(schema, {"s": np.array([0])})

    def test_dtype_coercion(self):
        schema = Schema([Column("a", DataType.INT32)])
        table = Table(schema, {"a": np.array([1.0, 2.0])})
        assert table.column("a").dtype == np.int32

    def test_empty(self):
        schema = Schema([Column("a", DataType.INT32)])
        assert Table.empty(schema).num_rows == 0


class TestAccess:
    def test_strings_materialisation(self):
        table = make_dict_table()
        assert table.strings("url").tolist() == [
            "a.com", "c.com", "b.com", "a.com"
        ]

    def test_dictionary_of_non_dict_column_raises(self):
        table = make_dict_table()
        with pytest.raises(TableError, match="not dictionary-encoded"):
            table.dictionary("k")

    def test_row_and_total_bytes(self, small_table):
        assert small_table.row_bytes() == 12
        assert small_table.total_bytes() == 60
        assert small_table.total_bytes(["v"]) == 20


class TestOperations:
    def test_filter(self, small_table):
        out = small_table.filter(small_table.column("k") == 2)
        assert out.column("v").tolist() == [20, 21]

    def test_filter_bad_mask_length(self, small_table):
        with pytest.raises(TableError, match=r"mask length 1 != table rows 5"):
            small_table.filter(np.array([True]))

    def test_filter_non_boolean_mask_names_dtype(self, small_table):
        """The error must name the offending dtype, so a caller holding
        row indices sees immediately what they passed."""
        with pytest.raises(TableError, match=r"got dtype int64.*take\(\)"):
            small_table.filter(np.array([0, 2, 4], dtype=np.int64))

    def test_take(self, small_table):
        out = small_table.take(np.array([4, 0]))
        assert out.column("k").tolist() == [5, 1]

    def test_project(self, small_table):
        out = small_table.project(["v"])
        assert out.schema.names == ("v",)
        assert out.num_rows == 5

    def test_project_preserves_dictionary(self):
        table = make_dict_table()
        out = table.project(["url"])
        assert out.strings("url")[0] == "a.com"

    def test_rename(self, small_table):
        out = small_table.rename({"k": "key"})
        assert out.schema.names == ("key", "v")
        assert out.column("key").tolist() == small_table.column("k").tolist()

    def test_with_column(self, small_table):
        out = small_table.with_column(
            Column("w", DataType.INT64),
            np.arange(5, dtype=np.int64),
        )
        assert out.schema.names == ("k", "v", "w")
        assert out.column("w").tolist() == [0, 1, 2, 3, 4]

    def test_slice_is_view(self, small_table):
        out = small_table.slice(1, 3)
        assert out.column("k").tolist() == [2, 2]
        assert out.column("k").base is not None

    def test_split_conserves_rows(self, small_table):
        parts = small_table.split(3)
        assert sum(p.num_rows for p in parts) == small_table.num_rows

    def test_split_zero_parts(self, small_table):
        with pytest.raises(TableError):
            small_table.split(0)

    def test_sorted_by(self, small_table):
        out = small_table.sorted_by(["v"])
        assert out.column("v").tolist() == sorted(
            small_table.column("v").tolist()
        )

    def test_to_rows(self):
        table = make_dict_table()
        rows = table.to_rows()
        assert rows[0] == (1, "a.com")


class TestConcat:
    def test_roundtrip_split_concat(self, small_table):
        parts = small_table.split(2)
        combined = Table.concat(parts)
        assert combined.to_rows() == small_table.to_rows()

    def test_concat_empty_list_rejected(self):
        with pytest.raises(TableError):
            Table.concat([])

    def test_concat_schema_mismatch(self, small_table):
        other = small_table.rename({"k": "x"})
        with pytest.raises(TableError, match="schema mismatch"):
            Table.concat([small_table, other])

    def test_concat_dict_tables_sharing_dictionary(self):
        table = make_dict_table()
        parts = table.split(2)
        combined = Table.concat(parts)
        assert combined.strings("url").tolist() == \
            table.strings("url").tolist()


class TestFromRows:
    def test_round_trip(self):
        schema = Schema([
            Column("k", DataType.INT32),
            Column("s", DataType.DICT_STRING),
        ])
        table = table_from_rows(schema, [(1, "x"), (2, "y"), (3, "x")])
        assert table.to_rows() == [(1, "x"), (2, "y"), (3, "x")]

    def test_empty_rows(self):
        schema = Schema([Column("k", DataType.INT32)])
        assert table_from_rows(schema, []).num_rows == 0
