"""Tests for execution traces and their DES replay semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.replay import replay_trace
from repro.sim.trace import Trace


def linear_trace(*durations):
    trace = Trace("linear")
    previous = None
    for index, duration in enumerate(durations):
        trace.add(f"p{index}", "cpu", duration,
                  after=[previous] if previous else [])
        previous = f"p{index}"
    return trace


class TestTraceConstruction:
    def test_duplicate_phase_rejected(self):
        trace = Trace()
        trace.add("a", "cpu", 1.0)
        with pytest.raises(SimulationError, match="duplicate"):
            trace.add("a", "cpu", 1.0)

    def test_unknown_dependency_rejected(self):
        trace = Trace()
        with pytest.raises(SimulationError, match="unknown phase"):
            trace.add("a", "cpu", 1.0, after=["ghost"])

    def test_negative_duration_rejected(self):
        trace = Trace()
        with pytest.raises(SimulationError, match="negative"):
            trace.add("a", "cpu", -1.0)

    def test_lookup_and_names(self):
        trace = linear_trace(1, 2)
        assert trace.phase("p1").seconds == 2
        assert trace.names() == ["p0", "p1"]
        with pytest.raises(SimulationError):
            trace.phase("nope")

    def test_total_work(self):
        assert linear_trace(1, 2, 3).total_work_seconds() == 6

    def test_describe_mentions_phases(self):
        text = linear_trace(1, 2).describe()
        assert "p0" in text and "p1" in text


class TestReplaySemantics:
    def test_sequential_chain_sums(self):
        result = replay_trace(linear_trace(10, 20, 5))
        assert result.total_seconds == pytest.approx(35, rel=1e-6)

    def test_independent_phases_overlap(self):
        trace = Trace()
        trace.add("a", "cpu", 10)
        trace.add("b", "cpu", 4)
        result = replay_trace(trace)
        assert result.total_seconds == pytest.approx(10)

    def test_streaming_consumer_faster_than_producer(self):
        """A fast consumer of a streamed producer ends just after it."""
        trace = Trace()
        trace.add("producer", "scan", 100)
        trace.add("consumer", "shuffle", 10, streams_from=["producer"])
        result = replay_trace(trace)
        assert result.total_seconds == pytest.approx(100, rel=0.03)

    def test_streaming_consumer_slower_than_producer(self):
        trace = Trace()
        trace.add("producer", "scan", 10)
        trace.add("consumer", "shuffle", 100, streams_from=["producer"])
        result = replay_trace(trace)
        assert result.total_seconds == pytest.approx(100, rel=0.03)

    def test_pipelining_off_serialises_stream_edges(self):
        trace = Trace()
        trace.add("producer", "scan", 50)
        trace.add("consumer", "shuffle", 50, streams_from=["producer"])
        pipelined = replay_trace(trace, pipelining=True)
        materialised = replay_trace(trace, pipelining=False)
        assert pipelined.total_seconds == pytest.approx(50, rel=0.05)
        assert materialised.total_seconds == pytest.approx(100, rel=1e-6)

    def test_barrier_blocks_until_finish(self):
        trace = Trace()
        trace.add("scan", "scan", 30)
        trace.add("bloom", "bloom", 1, after=["scan"])
        trace.add("export", "transfer", 5, after=["bloom"])
        result = replay_trace(trace)
        assert result.total_seconds == pytest.approx(36)
        assert result.phase("export").start == pytest.approx(31)

    def test_zero_duration_phase(self):
        trace = Trace()
        trace.add("a", "cpu", 0.0)
        trace.add("b", "cpu", 1.0, after=["a"])
        assert replay_trace(trace).total_seconds == pytest.approx(1.0)

    def test_phase_timings_recorded(self):
        result = replay_trace(linear_trace(2, 3))
        assert result.phase("p0").elapsed == pytest.approx(2)
        assert result.phase("p1").start == pytest.approx(2)
        with pytest.raises(SimulationError):
            result.phase("ghost")

    def test_invalid_chunk_count(self):
        with pytest.raises(SimulationError):
            replay_trace(linear_trace(1), chunks=0)

    def test_breakdown_report(self):
        text = replay_trace(linear_trace(1, 2)).breakdown()
        assert "p0" in text and "->" in text


class TestReplayProperties:
    @given(durations=st.lists(
        st.floats(0, 100, allow_nan=False), min_size=1, max_size=8,
    ))
    @settings(max_examples=40, deadline=None)
    def test_makespan_bounds(self, durations):
        """Makespan of any chain equals the sum; of any fan-out, the max."""
        chain = replay_trace(linear_trace(*durations))
        assert chain.total_seconds == pytest.approx(
            sum(durations), rel=1e-6, abs=1e-6
        )
        fan = Trace()
        for index, duration in enumerate(durations):
            fan.add(f"p{index}", "cpu", duration)
        fanned = replay_trace(fan)
        assert fanned.total_seconds == pytest.approx(
            max(durations), rel=1e-6, abs=1e-6
        )

    @given(
        producer=st.floats(0.1, 50, allow_nan=False),
        consumer=st.floats(0.1, 50, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_stream_pair_close_to_max(self, producer, consumer):
        """A streamed pair's makespan approximates max(p, c) and the
        pipelined run never beats max nor exceeds the serialised sum."""
        trace = Trace()
        trace.add("p", "scan", producer)
        trace.add("c", "cpu", consumer, streams_from=["p"])
        total = replay_trace(trace).total_seconds
        lower = max(producer, consumer)
        assert lower - 1e-9 <= total <= producer + consumer + 1e-9
        assert total <= lower * 1.05 + 1e-6


class TestCriticalPath:
    def test_linear_chain_is_whole_chain(self):
        trace = linear_trace(5, 10, 2)
        timing = replay_trace(trace)
        assert timing.critical_path(trace) == ["p0", "p1", "p2"]

    def test_fan_picks_slow_branch(self):
        trace = Trace()
        trace.add("fast", "cpu", 1)
        trace.add("slow", "cpu", 100)
        trace.add("sink", "cpu", 1, after=["fast", "slow"])
        timing = replay_trace(trace)
        assert timing.critical_path(trace) == ["slow", "sink"]

    def test_stream_producer_on_path_when_gating(self):
        trace = Trace()
        trace.add("scan", "scan", 100)
        trace.add("shuffle", "shuffle", 5, streams_from=["scan"])
        timing = replay_trace(trace)
        assert timing.critical_path(trace) == ["scan", "shuffle"]

    def test_early_dependency_not_on_path(self):
        trace = Trace()
        trace.add("prep", "cpu", 1)
        trace.add("long", "cpu", 50, after=["prep"])
        timing = replay_trace(trace)
        path = timing.critical_path(trace)
        # prep finished at t=1 and long ran 50s on its own: both are on
        # the chain because prep gated long's start.
        assert path == ["prep", "long"]

    def test_without_trace_returns_terminal(self):
        trace = linear_trace(1, 2)
        timing = replay_trace(trace)
        assert timing.critical_path() == ["p1"]

    def test_zigzag_critical_path_is_sensible(self, loaded_warehouse,
                                              paper_query):
        from repro import algorithm_by_name

        result = algorithm_by_name("zigzag").run(
            loaded_warehouse, paper_query
        )
        path = result.critical_path()
        assert path[-1] == "result_return"
        # The makespan chain must pass through the HDFS scan or the
        # database export — the two physical bottlenecks.
        assert any(name in path for name in ("hdfs_scan", "db_export"))
