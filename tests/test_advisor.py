"""Tests for the join advisor (the paper's Section 5.5 rules as code)."""

import pytest

from repro.core.advisor import JoinAdvisor, WorkloadEstimate


def estimate(sigma_t, sigma_l, s_t=0.2, s_l=0.1, format_name="parquet"):
    return WorkloadEstimate(
        t_rows=1.6e9, l_rows=15e9,
        sigma_t=sigma_t, sigma_l=sigma_l, s_t=s_t, s_l=s_l,
        format_name=format_name,
    )


@pytest.fixture(scope="module")
def advisor():
    return JoinAdvisor()


class TestDecisions:
    def test_broadcast_for_tiny_t_prime(self, advisor):
        decision = advisor.decide(estimate(0.0005, 0.2))
        assert decision.best in ("broadcast", "repartition")
        # And broadcast must at least be competitive with repartition.
        est = decision.estimated_seconds
        assert est["broadcast"] <= est["repartition"] * 1.2

    def test_db_side_for_tiny_sigma_l(self, advisor):
        decision = advisor.decide(estimate(0.1, 0.001))
        assert decision.best.startswith("db")

    def test_zigzag_for_common_case(self, advisor):
        decision = advisor.decide(estimate(0.1, 0.3))
        assert decision.best == "zigzag"

    def test_rationale_strings(self, advisor):
        assert "paper" in advisor.decide(estimate(0.1, 0.3)).rationale
        assert "paper" in advisor.decide(estimate(0.1, 0.001)).rationale

    def test_ranking_sorted(self, advisor):
        ranking = advisor.decide(estimate(0.1, 0.3)).ranking()
        values = [seconds for _name, seconds in ranking]
        assert values == sorted(values)
        assert ranking[0][0] == "zigzag"

    def test_ranking_deterministic_under_cost_ties(self):
        """Equal estimates must rank by name, whatever the dict order."""
        from repro.core.advisor import AdvisorDecision

        forward = AdvisorDecision(
            best="a", rationale="",
            estimated_seconds={"a": 10.0, "b": 10.0, "c": 5.0},
        )
        backward = AdvisorDecision(
            best="a", rationale="",
            estimated_seconds={"c": 5.0, "b": 10.0, "a": 10.0},
        )
        expected = [("c", 5.0), ("a", 10.0), ("b", 10.0)]
        assert forward.ranking() == expected
        assert backward.ranking() == expected


class TestEstimateConsistency:
    def test_all_algorithms_estimated(self, advisor):
        estimates = advisor.estimate_all(estimate(0.1, 0.2))
        assert set(estimates) == {
            "db", "db(BF)", "broadcast", "repartition",
            "repartition(BF)", "zigzag",
        }
        assert all(value > 0 for value in estimates.values())

    def test_db_side_estimate_grows_with_sigma_l(self, advisor):
        small = advisor.estimate_all(estimate(0.1, 0.01))["db"]
        large = advisor.estimate_all(estimate(0.1, 0.3))["db"]
        assert large > 2 * small

    def test_zigzag_estimate_flat_in_sigma_l(self, advisor):
        small = advisor.estimate_all(estimate(0.1, 0.01))["zigzag"]
        large = advisor.estimate_all(estimate(0.1, 0.3))["zigzag"]
        assert large < 2 * small

    def test_text_estimates_higher(self, advisor):
        parquet = advisor.estimate_all(estimate(0.1, 0.2))["zigzag"]
        text = advisor.estimate_all(
            estimate(0.1, 0.2, format_name="text")
        )["zigzag"]
        assert text > parquet

    def test_estimates_track_simulation_ordering(self, advisor):
        """The advisor's relative ordering must agree with the full
        simulation at a representative point."""
        from repro import algorithm_by_name
        from repro.bench.harness import WarehouseCache

        cache = WarehouseCache(scale=1.0 / 50_000.0)
        setup = cache.setup(0.1, 0.2, s_t=0.1, s_l=0.1)
        simulated = {
            name: algorithm_by_name(name).run(
                setup.warehouse, setup.query
            ).total_seconds
            for name in ("zigzag", "repartition", "db")
        }
        estimated = advisor.estimate_all(
            estimate(0.1, 0.2, s_t=0.1, s_l=0.1)
        )
        # Same winner and same loser among the three.
        sim_order = sorted(simulated, key=simulated.get)
        est_order = sorted(
            {k: estimated[k] for k in simulated}, key=estimated.get
        )
        assert sim_order[0] == est_order[0]
        assert sim_order[-1] == est_order[-1]
