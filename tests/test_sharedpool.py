"""Tests for the segment pool and the shared multi-query process pool.

Covers the :class:`~repro.parallel.shm.SegmentPool` lifecycle
(reuse-after-release, banking worker-created segments, the byte-cap
eviction path, close reclaiming everything) and the
:class:`~repro.parallel.sharedpool.SharedProcessPool`: concurrent
streams from many threads, cross-stream scheduling events, crash
containment that fails only the offending stream, and — the isolation
property the shared pool exists to protect — one tenant's worker crash
never reclaiming another tenant's live segments.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro import parallel
from repro.errors import ParallelExecutionError
from repro.parallel import (
    AttachedTable,
    SegmentPool,
    SharedProcessPool,
    ShmRegistry,
    export_table,
    leaked_segments,
)
from repro.parallel.shm import disown_segment, open_segment
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table


def _int_table(num_rows: int = 256) -> Table:
    schema = Schema([
        Column("k", DataType.INT64),
        Column("v", DataType.INT64),
    ])
    rng = np.random.default_rng(11)
    return Table(schema, {
        "k": np.arange(num_rows, dtype=np.int64),
        "v": rng.integers(0, 1 << 30, num_rows).astype(np.int64),
    })


# Worker bodies must be importable from the pool's forked children.
def _square(payload):
    return payload * payload


def _slow_square(payload):
    time.sleep(0.01)
    return payload * payload


def _die(_payload):
    os._exit(13)


@pytest.fixture
def registry():
    registry = ShmRegistry()
    yield registry
    registry.close_all()
    assert leaked_segments(registry.prefix) == []


@pytest.fixture
def shared_pool():
    pool = SharedProcessPool(workers=2)
    yield pool
    pool.shutdown()
    assert leaked_segments(pool.registry.prefix) == []


# ----------------------------------------------------------------------
# Segment-pool lifecycle
# ----------------------------------------------------------------------
class TestSegmentPoolLifecycle:
    def test_reuse_after_release(self, registry):
        pool = SegmentPool(registry)
        first = pool.acquire(1000)
        assert pool.stats["created"] == 1
        name = first.name
        pool.recycle(name)
        assert pool.stats["recycled"] == 1
        # 900 rounds to the same 1024-byte bucket: the mapped segment
        # comes back instead of a fresh shm_open.
        second = pool.acquire(900)
        assert second.name == name
        assert pool.stats["reused"] == 1
        assert pool.stats["created"] == 1
        pool.close()

    def test_bank_adopts_worker_segment_for_reuse(self, registry):
        pool = SegmentPool(registry)
        # Simulate a worker-created result segment: exists in /dev/shm,
        # disowned (outside any tracker), not yet registry-owned.
        orphan = open_segment(f"{registry.prefix}worker0", create=True,
                              size=8192)
        disown_segment(orphan)
        name = orphan.name
        orphan.close()
        pool.bank(name)
        assert pool.stats["banked"] == 1
        assert name in registry.owned_names()
        # An exactly-bucket-sized banked segment satisfies the next
        # acquire of its bucket.
        reused = pool.acquire(8192)
        assert reused.name == name
        assert pool.stats["reused"] == 1
        pool.close()

    def test_bank_tolerates_vanished_segment(self, registry):
        pool = SegmentPool(registry)
        pool.bank(f"{registry.prefix}nonexistent")
        assert pool.stats["banked"] == 0
        pool.close()

    def test_eviction_bounds_free_list_bytes(self, registry):
        pool = SegmentPool(registry, max_bytes=4096)
        first = pool.acquire(4096)
        second = pool.acquire(4096)
        pool.recycle(first.name)
        assert pool.free_bytes() == 4096
        # The cap is full: the second recycle unlinks instead of parking.
        pool.recycle(second.name)
        assert pool.stats["evicted"] == 1
        assert pool.free_bytes() == 4096
        pool.close()

    def test_close_reclaims_free_and_busy(self, registry):
        pool = SegmentPool(registry)
        busy = pool.acquire(2048)
        parked = pool.acquire(2048)
        pool.recycle(parked.name)
        assert busy.name in pool.busy_names()
        pool.close()
        assert leaked_segments(registry.prefix) == []


# ----------------------------------------------------------------------
# Shared multi-query pool
# ----------------------------------------------------------------------
class TestSharedProcessPool:
    def test_empty_batch(self, shared_pool):
        assert shared_pool.run_all(_square, []) == []
        assert list(shared_pool.run_unordered(_square, [])) == []

    def test_concurrent_streams_each_correct(self, shared_pool):
        parallel.drain_pool_events()
        results = {}
        errors = []

        def stream(index):
            try:
                with parallel.task_origin(f"tenant{index}", f"s{index}"):
                    results[index] = shared_pool.run_all(
                        _slow_square, list(range(20)))
            except BaseException as exc:  # pragma: no cover - fail fast
                errors.append(exc)

        threads = [threading.Thread(target=stream, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        expected = [i * i for i in range(20)]
        assert all(results[i] == expected for i in range(4))
        # 4 streams x 20 tasks into 2 slots: tasks waited, and freed
        # slots were handed across streams (work stealing).
        events = {event for event, _ in parallel.drain_pool_events()}
        assert "contention" in events
        assert "cross_stream_dispatch" in events

    def test_run_unordered_yields_full_multiset(self, shared_pool):
        with parallel.task_origin("t0", "unordered"):
            got = sorted(shared_pool.run_unordered(
                _square, list(range(16))))
        assert got == [i * i for i in range(16)]

    def test_crash_fails_only_its_stream(self, shared_pool):
        parallel.drain_pool_events()
        outcome = {}

        def victim():
            try:
                with parallel.task_origin("victim", "bad"):
                    shared_pool.run_all(_die, [None, None])
                outcome["victim"] = "no-error"
            except ParallelExecutionError:
                outcome["victim"] = "failed-as-expected"

        def innocent():
            with parallel.task_origin("innocent", "good"):
                outcome["innocent"] = shared_pool.run_all(
                    _slow_square, list(range(40)))

        threads = [threading.Thread(target=victim),
                   threading.Thread(target=innocent)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcome["victim"] == "failed-as-expected"
        assert outcome["innocent"] == [i * i for i in range(40)]
        events = {event for event, _ in parallel.drain_pool_events()}
        assert "executor_rebuild" in events
        # The pool stays usable on the rebuilt executor.
        assert shared_pool.run_all(_square, [1, 2, 3]) == [1, 4, 9]

    def test_crash_never_reclaims_other_tenants_live_segments(
            self, shared_pool):
        table = _int_table()
        handle = export_table(table, shared_pool.registry)
        assert handle.segment is not None
        with pytest.raises(ParallelExecutionError):
            with parallel.task_origin("crasher", "bad"):
                shared_pool.run_all(_die, [None])
        # The crash tore down and rebuilt the executor and queued an
        # orphan sweep — but the other tenant's registry-owned export
        # must still attach and round-trip bit-identically.
        with AttachedTable(handle) as attached:
            survived = attached.materialize()
        assert survived.num_rows == table.num_rows
        np.testing.assert_array_equal(
            survived.column("v"), table.column("v"))
        shared_pool.pool.release(handle.segment)

    def test_deferred_sweep_reclaims_orphans_once_idle(self, shared_pool):
        # Warm the executor so the crash has a pool to break.
        shared_pool.run_all(_square, [1])
        orphan = open_segment(
            f"{shared_pool.registry.prefix}deadworker", create=True,
            size=64)
        disown_segment(orphan)
        orphan.close()
        with pytest.raises(ParallelExecutionError):
            with parallel.task_origin("crasher", "bad"):
                shared_pool.run_all(_die, [None])
        # The sweep runs from the last completion callback once no
        # stream is active and no slot is busy; poll briefly.
        deadline = time.monotonic() + 5.0
        name = f"{shared_pool.registry.prefix}deadworker"
        while time.monotonic() < deadline:
            if name not in leaked_segments(shared_pool.registry.prefix):
                break
            time.sleep(0.02)
        assert name not in leaked_segments(shared_pool.registry.prefix)

    def test_stats_snapshot_reports_queue_and_segment_counters(
            self, shared_pool):
        shared_pool.run_all(_square, [1, 2])
        snapshot = shared_pool.stats_snapshot()
        assert snapshot["pending"] == 0
        assert snapshot["slots_busy"] == 0
        assert snapshot["active_streams"] == 0
        assert "created" in snapshot and "reused" in snapshot

    def test_shutdown_is_idempotent(self):
        pool = SharedProcessPool(workers=2)
        pool.run_all(_square, [3])
        pool.shutdown()
        pool.shutdown()
        assert leaked_segments(pool.registry.prefix) == []
