"""Tests for the parallel database substrate (worker, database,
optimizer, UDF registry)."""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.core.bloom import BloomFilter
from repro.edw.database import ParallelDatabase
from repro.edw.optimizer import DbJoinStrategy, choose_db_join_strategy
from repro.edw.udf import default_udf_registry
from repro.edw.worker import DbWorker
from repro.errors import CatalogError, UdfError
from repro.relational.expressions import compare
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table


def small_db(workers=6, servers=3):
    return ParallelDatabase(ClusterConfig(db_workers=workers,
                                          db_servers=servers))


def sample_table(rows=600, seed=3):
    rng = np.random.default_rng(seed)
    schema = Schema([
        Column("uniqKey", DataType.INT64),
        Column("joinKey", DataType.INT32),
        Column("corPred", DataType.INT32),
        Column("indPred", DataType.INT32),
    ])
    return Table(schema, {
        "uniqKey": np.arange(rows, dtype=np.int64),
        "joinKey": rng.integers(0, 40, rows).astype(np.int32),
        "corPred": rng.integers(0, 100, rows).astype(np.int32),
        "indPred": rng.integers(0, 100, rows).astype(np.int32),
    })


class TestLoading:
    def test_partitions_conserve_rows(self):
        db = small_db()
        table = sample_table()
        db.create_table("T", table, distribute_on="uniqKey")
        gathered = db.gather_table("T")
        assert gathered.num_rows == table.num_rows
        assert sorted(r[0] for r in gathered.to_rows()) == \
            sorted(r[0] for r in table.to_rows())

    def test_worker_and_server_layout(self):
        db = small_db(workers=6, servers=3)
        assert db.num_workers == 6
        assert [w.server_id for w in db.workers] == [0, 0, 1, 1, 2, 2]

    def test_duplicate_table_rejected(self):
        db = small_db()
        db.create_table("T", sample_table(), "uniqKey")
        with pytest.raises(CatalogError, match="already exists"):
            db.create_table("T", sample_table(), "uniqKey")

    def test_unknown_table(self):
        with pytest.raises(CatalogError):
            small_db().table_meta("ghost")

    def test_unknown_distribution_column(self):
        with pytest.raises(Exception):
            small_db().create_table("T", sample_table(), "ghost")


class TestParallelOps:
    def setup_method(self):
        self.db = small_db()
        self.table = sample_table()
        self.db.create_table("T", self.table, "uniqKey")
        self.predicate = compare("corPred", "<=", 30)

    def test_filter_project_matches_single_node(self):
        parts, stats = self.db.filter_project(
            "T", self.predicate, ["joinKey"]
        )
        distributed = sorted(
            key for part in parts for key in part.column("joinKey").tolist()
        )
        expected = sorted(
            self.table.filter(self.predicate.evaluate(self.table))
            .column("joinKey").tolist()
        )
        assert distributed == expected
        assert sum(s.rows_out for s in stats) == len(expected)

    def test_global_bloom_covers_exactly_filtered_keys(self):
        result = self.db.build_global_bloom(
            "T", self.predicate, "joinKey", num_bits=4096
        )
        mask = self.predicate.evaluate(self.table)
        keys = np.unique(self.table.column("joinKey")[mask])
        assert result.bloom.contains(keys).all()
        assert result.keys_added == int(mask.sum())
        assert not result.index_only  # no index created here

    def test_global_bloom_index_only(self):
        self.db.create_index("T", "idx",
                             ["corPred", "indPred", "joinKey"])
        result = self.db.build_global_bloom(
            "T", self.predicate, "joinKey", num_bits=4096
        )
        assert result.index_only

    def test_index_only_bloom_same_keys_as_scan(self):
        plain = self.db.build_global_bloom(
            "T", self.predicate, "joinKey", num_bits=4096
        )
        self.db.create_index("T", "idx",
                             ["corPred", "indPred", "joinKey"])
        indexed = self.db.build_global_bloom(
            "T", self.predicate, "joinKey", num_bits=4096
        )
        probes = np.arange(0, 200)
        assert (plain.bloom.contains(probes)
                == indexed.bloom.contains(probes)).all()


class TestWorker:
    def test_apply_bloom_keeps_members(self):
        bloom = BloomFilter(2048)
        bloom.add(np.array([1, 2, 3]))
        table = sample_table(50)
        kept = DbWorker.apply_bloom(table, "joinKey", bloom)
        exact = {1, 2, 3}
        # No row with a member key may be dropped (no false negatives).
        expected_min = sum(
            1 for k in table.column("joinKey").tolist() if k in exact
        )
        assert kept.num_rows >= expected_min

    def test_partition_for_send_conserves(self):
        table = sample_table(100)
        parts = DbWorker.partition_for_send(table, "joinKey", 7)
        assert sum(p.num_rows for p in parts) == 100

    def test_duplicate_partition_store_rejected(self):
        worker = DbWorker(0, 0)
        worker.store_partition("T", sample_table(10))
        with pytest.raises(CatalogError, match="already stores"):
            worker.store_partition("T", sample_table(10))

    def test_missing_partition(self):
        with pytest.raises(CatalogError, match="no partition"):
            DbWorker(0, 0).partition("T")


class TestOptimizer:
    def test_broadcast_small_db_side(self):
        choice = choose_db_join_strategy(10.0, 10_000.0, 10)
        assert choice.strategy is DbJoinStrategy.BROADCAST_DB_SIDE
        assert choice.internal_bytes == 100.0

    def test_broadcast_small_hdfs_side(self):
        choice = choose_db_join_strategy(10_000.0, 10.0, 10)
        assert choice.strategy is DbJoinStrategy.BROADCAST_HDFS_SIDE

    def test_repartition_for_comparable_sides(self):
        choice = choose_db_join_strategy(1000.0, 900.0, 10)
        assert choice.strategy is DbJoinStrategy.REPARTITION_BOTH
        assert choice.internal_bytes == 1900.0

    def test_tie_prefers_repartition(self):
        # workers=2: broadcast cost == repartition cost when sides equal.
        choice = choose_db_join_strategy(100.0, 100.0, 2)
        assert choice.strategy is DbJoinStrategy.REPARTITION_BOTH


class TestUdfRegistry:
    def test_paper_udfs_present(self):
        registry = default_udf_registry()
        assert set(registry.names()) >= {
            "cal_filter", "get_filter", "combine_filter", "extract_group"
        }

    def test_filter_pipeline(self):
        registry = default_udf_registry()
        local_a = registry.call("cal_filter", np.array([1, 2]), 1024)
        local_b = registry.call("cal_filter", np.array([3]), 1024)
        merged = registry.call(
            "combine_filter",
            [registry.call("get_filter", local_a), local_b],
        )
        assert merged.contains(np.array([1, 2, 3])).all()

    def test_extract_group(self):
        registry = default_udf_registry()
        assert registry.call(
            "extract_group", "http://shop1.example.com/item/p1"
        ) == "http://shop1.example.com"
        assert registry.call("extract_group", "bare-string") == "bare-string"

    def test_unknown_udf(self):
        with pytest.raises(UdfError, match="unknown UDF"):
            default_udf_registry().call("nope")

    def test_duplicate_registration(self):
        registry = default_udf_registry()
        with pytest.raises(UdfError, match="already registered"):
            registry.register("cal_filter", lambda: None)


class TestHybridJoinStrategies:
    """Direct execution of all three in-database physical plans."""

    def _inputs(self):
        from repro.relational.aggregates import AggregateSpec
        from repro.query.query import HybridQuery

        db = small_db(workers=4, servers=2)
        t = sample_table(400, seed=9)
        db.create_table("T", t, "uniqKey")
        t_parts, _ = db.filter_project(
            "T", compare("corPred", "<=", 60), ["joinKey", "indPred"]
        )
        # Fake ingested HDFS rows: arbitrary grouping across workers.
        l_rows = sample_table(300, seed=10).rename(
            {"uniqKey": "l_uniq"}
        ).project(["joinKey", "corPred"])
        ingested = l_rows.split(4)
        query = HybridQuery(
            db_table="T", hdfs_table="L",
            db_join_key="joinKey", hdfs_join_key="joinKey",
            db_projection=("joinKey", "indPred"),
            hdfs_projection=("joinKey", "corPred"),
            group_by=("l_joinKey",),
            aggregates=(AggregateSpec("count"),),
        )
        return db, t_parts, ingested, query

    def test_all_strategies_agree(self):
        from repro.edw.optimizer import DbJoinChoice, DbJoinStrategy

        db, t_parts, ingested, query = self._inputs()
        results = {}
        for strategy in DbJoinStrategy:
            result, stats = db.execute_hybrid_join(
                t_parts, ingested, query, DbJoinChoice(strategy, 0.0)
            )
            results[strategy] = result.to_rows()
            assert stats.result_rows == result.num_rows
        values = list(results.values())
        assert values[0] == values[1] == values[2]

    def test_partition_count_validated(self):
        from repro.edw.optimizer import DbJoinChoice, DbJoinStrategy

        db, t_parts, ingested, query = self._inputs()
        with pytest.raises(CatalogError, match="partitions"):
            db.execute_hybrid_join(
                t_parts[:2], ingested, query,
                DbJoinChoice(DbJoinStrategy.REPARTITION_BOTH, 0.0),
            )
        with pytest.raises(CatalogError, match="ingested"):
            db.execute_hybrid_join(
                t_parts, ingested[:1], query,
                DbJoinChoice(DbJoinStrategy.REPARTITION_BOTH, 0.0),
            )
