"""Tests for the worker-pipeline micro-model (paper Fig. 7)."""

import pytest

from repro.config import default_config
from repro.errors import SimulationError
from repro.jen.pipeline import PipelineInputs, simulate_worker_pipeline


def make_inputs(**overrides):
    base = dict(
        rows_scanned=500e6,
        stored_bytes=12.5e9,
        rows_out=50e6,
        wire_row_bytes=32.0,
        rows_in=50e6,
        format_name="parquet",
    )
    base.update(overrides)
    return PipelineInputs(**base)


class TestPipelineModel:
    def test_negative_volumes_rejected(self):
        with pytest.raises(SimulationError):
            simulate_worker_pipeline(
                make_inputs(rows_scanned=-1), default_config()
            )

    def test_all_stages_reported(self):
        report = simulate_worker_pipeline(make_inputs(), default_config())
        assert set(report.stage_seconds) == {
            "read", "process", "send", "receive", "build"
        }
        assert report.makespan > 0

    def test_makespan_at_least_longest_stage(self):
        report = simulate_worker_pipeline(make_inputs(), default_config())
        assert report.makespan >= max(report.stage_seconds.values()) - 1e-6

    def test_makespan_benefits_from_overlap(self):
        """The pipelined makespan is well below the serial sum."""
        report = simulate_worker_pipeline(make_inputs(), default_config())
        serial = sum(report.stage_seconds.values())
        assert report.makespan < 0.8 * serial

    def test_paper_claim_process_thread_not_bottleneck(self):
        """Section 4.4: the single process thread is never the
        bottleneck, for either storage format at realistic volumes."""
        for format_name in ("parquet", "text", "orc"):
            report = simulate_worker_pipeline(
                make_inputs(format_name=format_name), default_config()
            )
            assert not report.process_thread_is_bottleneck(), format_name

    def test_text_is_read_bound(self):
        config = default_config()
        # Full text rows: ~74 bytes per row.
        report = simulate_worker_pipeline(
            make_inputs(format_name="text", stored_bytes=500e6 * 74),
            config,
        )
        assert report.bottleneck() == "read"

    def test_heavy_shuffle_is_network_bound(self):
        report = simulate_worker_pipeline(
            make_inputs(rows_out=400e6, rows_in=400e6), default_config()
        )
        assert report.bottleneck() in ("send", "receive")

    def test_describe_output(self):
        report = simulate_worker_pipeline(make_inputs(), default_config())
        text = report.describe()
        assert "bottleneck=" in text and "process" in text
