"""Tests for the workload generator: schemas, layouts, selectivities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.query.stats import measure_selectivities
from repro.workload.generator import (
    WorkloadSpec,
    generate_workload,
    solve_key_layout,
)
from repro.workload.scenario import build_paper_query, log_schema, \
    transaction_schema


class TestSpecValidation:
    def test_sigma_bounds(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(sigma_t=0.0, sigma_l=0.5, s_l=0.1)
        with pytest.raises(WorkloadError):
            WorkloadSpec(sigma_t=0.5, sigma_l=1.5, s_l=0.1)

    def test_s_bounds(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(sigma_t=0.5, sigma_l=0.5, s_l=2.0)

    def test_at_least_one_s(self):
        with pytest.raises(WorkloadError, match="at least one"):
            WorkloadSpec(sigma_t=0.5, sigma_l=0.5)

    def test_positive_counts(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(sigma_t=0.5, sigma_l=0.5, s_l=0.1, t_rows=0)


class TestLayoutSolver:
    def test_table1_parameters(self):
        spec = WorkloadSpec(sigma_t=0.1, sigma_l=0.4, s_t=0.2, s_l=0.1,
                            n_keys=1600)
        layout = solve_key_layout(spec)
        assert layout.s_t == pytest.approx(0.2, rel=0.05)
        assert layout.s_l == pytest.approx(0.1, rel=0.05)
        assert not layout.clamped

    def test_only_s_l_given(self):
        spec = WorkloadSpec(sigma_t=0.05, sigma_l=0.2, s_l=0.1, n_keys=1000)
        layout = solve_key_layout(spec)
        assert layout.s_l == pytest.approx(0.1, rel=0.1)

    def test_only_s_t_given(self):
        spec = WorkloadSpec(sigma_t=0.2, sigma_l=0.05, s_t=0.1, n_keys=1000)
        layout = solve_key_layout(spec)
        assert layout.s_t == pytest.approx(0.1, rel=0.1)

    def test_tiny_sigma_t_grows_kt(self):
        # sigma_t*n would give 1 key; the overlap forces more.
        spec = WorkloadSpec(sigma_t=0.001, sigma_l=0.2, s_l=0.1, n_keys=1000)
        layout = solve_key_layout(spec)
        assert layout.overlap <= layout.kt

    def test_paper_fig9b_point_is_clamped(self):
        spec = WorkloadSpec(sigma_t=0.1, sigma_l=0.4, s_t=0.2, s_l=0.4,
                            n_keys=1600)
        layout = solve_key_layout(spec)
        assert layout.clamped
        assert layout.kt + layout.kl - layout.overlap <= 1600

    def test_grossly_infeasible_rejected(self):
        spec = WorkloadSpec(sigma_t=0.9, sigma_l=0.9, s_t=0.05, s_l=0.05,
                            n_keys=1000)
        with pytest.raises(WorkloadError, match="infeasible"):
            solve_key_layout(spec)

    @given(
        sigma_t=st.sampled_from([0.01, 0.05, 0.1, 0.2]),
        sigma_l=st.sampled_from([0.01, 0.1, 0.2, 0.4]),
        s_l=st.sampled_from([0.05, 0.1, 0.2, 0.4]),
    )
    @settings(max_examples=40, deadline=None)
    def test_layout_always_fits_universe(self, sigma_t, sigma_l, s_l):
        spec = WorkloadSpec(sigma_t=sigma_t, sigma_l=sigma_l, s_l=s_l,
                            n_keys=2000)
        try:
            layout = solve_key_layout(spec)
        except WorkloadError:
            return  # explicitly rejected is fine
        assert layout.kt + layout.kl - layout.overlap <= 2000
        assert 0 < layout.overlap <= min(layout.kt, layout.kl)


class TestGeneratedTables:
    def test_schemas_match_paper(self, paper_workload):
        assert paper_workload.t_table.schema == transaction_schema()
        assert paper_workload.l_table.schema == log_schema()
        assert paper_workload.t_table.num_rows == paper_workload.spec.t_rows
        assert paper_workload.l_table.num_rows == paper_workload.spec.l_rows

    def test_deterministic_given_seed(self):
        spec = WorkloadSpec(sigma_t=0.1, sigma_l=0.2, s_l=0.1,
                            t_rows=2000, l_rows=5000, n_keys=200, seed=5)
        a = generate_workload(spec)
        b = generate_workload(spec)
        assert (a.t_table.column("joinKey")
                == b.t_table.column("joinKey")).all()
        assert (a.l_table.column("corPred")
                == b.l_table.column("corPred")).all()

    def test_different_seeds_differ(self):
        base = dict(sigma_t=0.1, sigma_l=0.2, s_l=0.1,
                    t_rows=2000, l_rows=5000, n_keys=200)
        a = generate_workload(WorkloadSpec(seed=1, **base))
        b = generate_workload(WorkloadSpec(seed=2, **base))
        assert (a.t_table.column("joinKey")
                != b.t_table.column("joinKey")).any()

    def test_join_keys_in_universe(self, paper_workload):
        keys = paper_workload.l_table.column("joinKey")
        assert keys.min() >= 0
        assert keys.max() < paper_workload.spec.n_keys

    @pytest.mark.parametrize("sigma_t,sigma_l,s_t,s_l", [
        (0.1, 0.4, 0.2, 0.1),    # Table 1
        (0.2, 0.2, 0.1, 0.2),    # Fig 8b middle
        (0.05, 0.1, None, 0.05),  # Fig 11a
        (0.01, 0.2, None, 0.1),  # Fig 10b
    ])
    def test_measured_selectivities_match_spec(self, sigma_t, sigma_l,
                                               s_t, s_l):
        spec = WorkloadSpec(
            sigma_t=sigma_t, sigma_l=sigma_l, s_t=s_t, s_l=s_l,
            t_rows=40_000, l_rows=200_000, n_keys=400, seed=11,
        )
        workload = generate_workload(spec)
        query = build_paper_query(workload)
        report = measure_selectivities(
            workload.t_table, workload.l_table, query
        )
        assert report.sigma_t == pytest.approx(sigma_t, rel=0.12)
        assert report.sigma_l == pytest.approx(sigma_l, rel=0.12)
        if s_t is not None:
            assert report.s_t == pytest.approx(s_t, rel=0.15)
        if s_l is not None:
            assert report.s_l == pytest.approx(s_l, rel=0.15)

    def test_corpred_correlated_indpred_not(self, paper_workload):
        """corPred orders with the key's rank; indPred is independent."""
        table = paper_workload.t_table
        keys = table.column("joinKey").astype(np.float64)
        cor = table.column("corPred").astype(np.float64)
        ind = table.column("indPred").astype(np.float64)
        cor_corr = np.corrcoef(keys, cor)[0, 1]
        ind_corr = np.corrcoef(keys, ind)[0, 1]
        assert cor_corr > 0.9
        assert abs(ind_corr) < 0.05


class TestKeySkew:
    def test_negative_skew_rejected(self):
        with pytest.raises(Exception):
            WorkloadSpec(sigma_t=0.1, sigma_l=0.2, s_l=0.1, key_skew=-1)

    def test_skewed_keys_concentrate(self):
        spec = WorkloadSpec(sigma_t=0.1, sigma_l=0.2, s_l=0.1,
                            t_rows=5_000, l_rows=50_000, n_keys=200,
                            key_skew=1.0, seed=4)
        workload = generate_workload(spec)
        counts = np.bincount(workload.l_table.column("joinKey"),
                             minlength=200)
        assert counts.max() > 10 * counts.mean()

    def test_skewed_selectivities_still_hit_spec(self):
        spec = WorkloadSpec(sigma_t=0.1, sigma_l=0.2, s_l=0.1,
                            t_rows=40_000, l_rows=200_000, n_keys=400,
                            key_skew=1.0, seed=4)
        workload = generate_workload(spec)
        query = build_paper_query(workload)
        report = measure_selectivities(
            workload.t_table, workload.l_table, query
        )
        assert report.sigma_t == pytest.approx(0.1, rel=0.15)
        assert report.sigma_l == pytest.approx(0.2, rel=0.15)
        assert report.s_l == pytest.approx(0.1, rel=0.2)

    def test_head_region_mass_at_least_uniform(self):
        """Both tables' correlated regions sit at the head of the Zipf
        ranking, so their probability mass only grows with skew — the
        sigma targets stay achievable (the generator's starvation guard
        is a safety net for alternative layouts, not this one)."""
        spec = WorkloadSpec(sigma_t=0.05, sigma_l=0.9, s_l=0.9,
                            t_rows=2_000, l_rows=10_000, n_keys=1_000,
                            key_skew=2.0, seed=2)
        workload = generate_workload(spec)  # must not raise
        query = build_paper_query(workload)
        report = measure_selectivities(
            workload.t_table, workload.l_table, query
        )
        assert report.sigma_l == pytest.approx(0.9, rel=0.1)

    def test_zipf_skew_factor_properties(self):
        from repro.workload import zipf_skew_factor
        assert zipf_skew_factor(0.0, 16_000_000, 30) == 1.0
        assert zipf_skew_factor(1.0, 16_000_000, 1) == 1.0
        mild = zipf_skew_factor(0.5, 16_000_000, 30)
        strong = zipf_skew_factor(1.2, 16_000_000, 30)
        assert 1.0 <= mild < strong

    def test_skewed_join_still_correct(self):
        from repro import algorithm_by_name, reference_join
        from tests.conftest import build_test_warehouse

        spec = WorkloadSpec(sigma_t=0.2, sigma_l=0.2, s_l=0.3,
                            t_rows=4_000, l_rows=20_000, n_keys=100,
                            key_skew=0.8, seed=6)
        workload = generate_workload(spec)
        query = build_paper_query(workload)
        warehouse = build_test_warehouse(workload)
        reference = reference_join(
            workload.t_table, workload.l_table, query
        )
        for name in ("zigzag", "repartition(BF)", "db(BF)"):
            result = algorithm_by_name(name).run(warehouse, query)
            assert result.result.to_rows() == reference.to_rows(), name


class TestWorkloadCache:
    def test_round_trip(self, tmp_path, paper_workload):
        from repro.workload import load_workload, save_workload

        path = save_workload(paper_workload, tmp_path / "wl.npz")
        loaded = load_workload(path)
        assert loaded.spec == paper_workload.spec
        assert loaded.layout == paper_workload.layout
        assert loaded.t_thresholds == paper_workload.t_thresholds
        assert (loaded.t_table.column("joinKey")
                == paper_workload.t_table.column("joinKey")).all()
        assert loaded.l_table.to_rows()[:5] == \
            paper_workload.l_table.to_rows()[:5]

    def test_loaded_workload_queries_identically(self, tmp_path,
                                                 paper_workload):
        from repro import reference_join
        from repro.workload import load_workload, save_workload

        path = save_workload(paper_workload, tmp_path / "wl.npz")
        loaded = load_workload(path)
        query = build_paper_query(loaded)
        a = reference_join(loaded.t_table, loaded.l_table, query)
        b = reference_join(paper_workload.t_table,
                           paper_workload.l_table,
                           build_paper_query(paper_workload))
        assert a.to_rows() == b.to_rows()

    def test_missing_file(self, tmp_path):
        from repro.workload import load_workload

        with pytest.raises(WorkloadError, match="no workload bundle"):
            load_workload(tmp_path / "ghost.npz")

    def test_version_guard(self, tmp_path, paper_workload):
        import json
        import numpy as np
        from repro.workload import load_workload, save_workload

        path = save_workload(paper_workload, tmp_path / "wl.npz")
        with np.load(path) as bundle:
            arrays = {k: bundle[k] for k in bundle.files}
        meta = json.loads(str(arrays["__meta__"]))
        meta["format_version"] = 99
        arrays["__meta__"] = np.array(json.dumps(meta))
        np.savez_compressed(path, **arrays)
        with pytest.raises(WorkloadError, match="version"):
            load_workload(path)
