"""Tests for the JEN engine: coordinator, workers, exchange, facade."""

import numpy as np
import pytest

from repro.core.bloom import BloomFilter
from repro.errors import CatalogError, JoinError
from repro.jen.coordinator import JenCoordinator
from repro.jen.exchange import shuffle
from repro.query.plan import apply_derivations
from tests.conftest import build_test_warehouse, make_test_spec

from repro import generate_workload, build_paper_query


@pytest.fixture(scope="module")
def env():
    workload = generate_workload(make_test_spec())
    warehouse = build_test_warehouse(workload)
    return workload, warehouse, build_paper_query(workload)


class TestCoordinator:
    def test_plan_scan_covers_all_blocks(self, env):
        _workload, warehouse, query = env
        assignment = warehouse.jen.coordinator.plan_scan(query.hdfs_table)
        blocks = warehouse.hdfs.table_blocks(query.hdfs_table)
        assigned = sum(
            len(assignment.blocks_for(w))
            for w in range(warehouse.jen.num_workers)
        )
        assert assigned == len(blocks)

    def test_plan_scan_cached(self, env):
        _workload, warehouse, query = env
        first = warehouse.jen.coordinator.plan_scan(query.hdfs_table)
        second = warehouse.jen.coordinator.plan_scan(query.hdfs_table)
        assert first is second

    def test_locality_is_high(self, env):
        _workload, warehouse, query = env
        assignment = warehouse.jen.coordinator.plan_scan(query.hdfs_table)
        assert assignment.locality_fraction() >= 0.9

    def test_worker_registry(self, env):
        _workload, warehouse, _query = env
        coordinator = warehouse.jen.coordinator
        assert len(coordinator.live_workers()) == warehouse.jen.num_workers
        with pytest.raises(CatalogError):
            coordinator.mark_worker(10_000, up=False)

    def test_membership_change_invalidates_plans(self, env):
        _workload, warehouse, query = env
        coordinator = JenCoordinator(warehouse.hdfs, 4)
        coordinator.plan_scan(query.hdfs_table)
        coordinator.mark_worker(3, up=False)
        assert len(coordinator.live_workers()) == 3
        replanned = coordinator.plan_scan(query.hdfs_table)
        assigned = sum(len(replanned.blocks_for(w)) for w in range(3))
        assert assigned == len(warehouse.hdfs.table_blocks(query.hdfs_table))
        coordinator.mark_worker(3, up=True)

    def test_designated_worker(self, env):
        _workload, warehouse, _query = env
        assert warehouse.jen.coordinator.designated_worker() == 0

    def test_table_meta_via_coordinator(self, env):
        workload, warehouse, query = env
        meta = warehouse.jen.coordinator.table_meta(query.hdfs_table)
        assert meta.num_rows == workload.l_table.num_rows


class TestDistributedScan:
    def test_scan_equals_reference_filter(self, env):
        workload, warehouse, query = env
        scan = warehouse.jen.distributed_scan(query)
        expected_mask = query.hdfs_predicate.evaluate(workload.l_table)
        assert scan.stats.rows_scanned == workload.l_table.num_rows
        assert scan.stats.rows_after_predicates == int(expected_mask.sum())
        assert scan.stats.rows_after_bloom == scan.stats.rows_after_predicates
        total_wire = sum(w.num_rows for w in scan.wire_tables)
        assert total_wire == int(expected_mask.sum())

    def test_wire_schema_matches_query(self, env):
        _workload, warehouse, query = env
        scan = warehouse.jen.distributed_scan(query)
        assert scan.wire_tables[0].schema.names == query.hdfs_wire_columns()

    def test_scan_with_bloom_prunes_but_never_drops_joiners(self, env):
        workload, warehouse, query = env
        t_mask = query.db_predicate.evaluate(workload.t_table)
        t_keys = np.unique(workload.t_table.column("joinKey")[t_mask])
        bloom = BloomFilter(
            warehouse.config.bloom_bits(),
            warehouse.config.bloom.num_hashes,
        )
        bloom.add(t_keys)
        plain = warehouse.jen.distributed_scan(query)
        pruned = warehouse.jen.distributed_scan(query, db_bloom=bloom)
        assert pruned.stats.rows_after_bloom < plain.stats.rows_after_bloom
        # Joining rows always survive.
        kept_keys = np.unique(np.concatenate([
            w.column(query.hdfs_join_key) for w in pruned.wire_tables
        ]))
        joining = np.intersect1d(
            t_keys,
            np.unique(np.concatenate([
                w.column(query.hdfs_join_key) for w in plain.wire_tables
            ])),
        )
        assert np.isin(joining, kept_keys).all()

    def test_local_bloom_build_during_scan(self, env):
        _workload, warehouse, query = env
        scan = warehouse.jen.distributed_scan(query, build_local_blooms=True)
        merged = scan.global_bloom()
        all_keys = np.unique(np.concatenate([
            w.column(query.hdfs_join_key) for w in scan.wire_tables
        ]))
        assert merged.contains(all_keys).all()

    def test_global_bloom_requires_build_flag(self, env):
        _workload, warehouse, query = env
        scan = warehouse.jen.distributed_scan(query)
        with pytest.raises(JoinError):
            scan.global_bloom()


class TestShuffleExchange:
    def test_shuffle_conserves_and_partitions_by_key(self, env):
        _workload, warehouse, query = env
        scan = warehouse.jen.distributed_scan(query)
        shuffled = warehouse.jen.shuffle_by_key(
            scan.wire_tables, query.hdfs_join_key
        )
        total = sum(t.num_rows for t in shuffled.per_destination)
        assert total == shuffled.tuples_shuffled
        assert shuffled.tuples_remote < shuffled.tuples_shuffled
        # A key lands on exactly one destination.
        seen = {}
        for dest, table in enumerate(shuffled.per_destination):
            for key in np.unique(table.column(query.hdfs_join_key)):
                assert seen.setdefault(int(key), dest) == dest

    def test_ragged_shuffle_rejected(self, env):
        _workload, warehouse, query = env
        scan = warehouse.jen.distributed_scan(query)
        with pytest.raises(JoinError, match="ragged"):
            shuffle([[scan.wire_tables[0]], []])

    def test_empty_shuffle_rejected(self):
        with pytest.raises(JoinError):
            shuffle([])


class TestDerivedColumns:
    def test_url_prefix_derivation(self, env):
        workload, _warehouse, query = env
        filtered = workload.l_table.slice(0, 50).project(
            list(query.hdfs_projection)
        )
        derived = apply_derivations(filtered, query)
        prefixes = derived.strings("urlPrefix")
        urls = filtered.strings("groupByExtractCol")
        for url, prefix in zip(urls, prefixes):
            assert url.startswith(prefix)
            assert "/item/" not in prefix


class TestScanRequest:
    def test_from_query_round_trip(self, env):
        from repro.jen.worker import ScanRequest

        _workload, _warehouse, query = env
        request = ScanRequest.from_query(query)
        assert request.projection == query.hdfs_projection
        assert request.wire_columns == query.hdfs_wire_columns()
        assert request.join_key == query.hdfs_join_key

    def test_scan_with_request_custom_projection(self, env):
        from repro.jen.worker import ScanRequest
        from repro.relational.expressions import compare

        workload, warehouse, _query = env
        request = ScanRequest(
            predicate=compare("corPred", "<=", 1000),
            projection=("joinKey",),
            derived=(),
            wire_columns=("joinKey",),
            join_key=None,
        )
        scan = warehouse.jen.scan_with_request("L", request)
        total = sum(w.num_rows for w in scan.wire_tables)
        expected = int(
            (workload.l_table.column("corPred") <= 1000).sum()
        )
        assert total == expected
        assert scan.wire_tables[0].schema.names == ("joinKey",)

    def test_request_without_join_key_skips_bloom(self, env):
        from repro.core.bloom import BloomFilter
        from repro.jen.worker import ScanRequest
        from repro.relational.expressions import TruePredicate

        _workload, warehouse, _query = env
        empty_bloom = BloomFilter(1024)  # would drop everything
        request = ScanRequest(
            predicate=TruePredicate(),
            projection=("joinKey",),
            derived=(),
            wire_columns=("joinKey",),
            join_key=None,
        )
        scan = warehouse.jen.scan_with_request(
            "L", request, db_bloom=empty_bloom
        )
        # No join key declared: the Bloom filter cannot apply.
        assert scan.stats.rows_after_bloom == \
            scan.stats.rows_after_predicates
