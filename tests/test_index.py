"""Tests for the database secondary index."""

import numpy as np
import pytest

from repro.edw.index import SecondaryIndex
from repro.errors import CatalogError
from repro.relational.expressions import TruePredicate, compare
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table


def make_partition(rows=200, seed=1):
    rng = np.random.default_rng(seed)
    schema = Schema([
        Column("corPred", DataType.INT32),
        Column("indPred", DataType.INT32),
        Column("joinKey", DataType.INT32),
        Column("payload", DataType.INT64),
    ])
    return Table(schema, {
        "corPred": rng.integers(0, 100, rows).astype(np.int32),
        "indPred": rng.integers(0, 100, rows).astype(np.int32),
        "joinKey": rng.integers(0, 50, rows).astype(np.int32),
        "payload": rng.integers(0, 10**9, rows),
    })


class TestConstruction:
    def test_needs_columns(self):
        with pytest.raises(CatalogError):
            SecondaryIndex("idx", make_partition(), [])

    def test_unknown_column(self):
        with pytest.raises(Exception):
            SecondaryIndex("idx", make_partition(), ["ghost"])

    def test_covers(self):
        index = SecondaryIndex("idx", make_partition(),
                               ["corPred", "indPred", "joinKey"])
        assert index.covers(["corPred", "joinKey"])
        assert not index.covers(["payload"])

    def test_entry_bytes(self):
        table = make_partition()
        index = SecondaryIndex("idx", table, ["corPred", "joinKey"])
        assert index.entry_bytes(table) == 4 + 4 + 8


class TestLookups:
    def setup_method(self):
        self.table = make_partition()
        self.index = SecondaryIndex(
            "idx", self.table, ["corPred", "indPred", "joinKey"]
        )

    def _check(self, predicate):
        expected = np.flatnonzero(predicate.evaluate(self.table))
        got = self.index.lookup_rows(predicate, self.table)
        assert sorted(got.tolist()) == expected.tolist()

    def test_le_range(self):
        self._check(compare("corPred", "<=", 30))

    def test_lt_gt_ge(self):
        self._check(compare("corPred", "<", 10))
        self._check(compare("corPred", ">", 90))
        self._check(compare("corPred", ">=", 95))

    def test_eq(self):
        self._check(compare("corPred", "==", 17))

    def test_conjunction_paper_predicate(self):
        self._check(
            compare("corPred", "<=", 40) & compare("indPred", "<=", 25)
        )

    def test_none_and_true_predicate_return_all(self):
        assert len(self.index.lookup_rows(None, self.table)) == \
            self.table.num_rows
        assert len(self.index.lookup_rows(TruePredicate(), self.table)) == \
            self.table.num_rows

    def test_uncovered_column_raises(self):
        with pytest.raises(CatalogError, match="does not cover"):
            self.index.lookup_rows(compare("payload", "<=", 5), self.table)

    def test_non_column_predicate_raises(self):
        from repro.relational.expressions import Negation
        with pytest.raises(CatalogError, match="cannot evaluate"):
            self.index.lookup_rows(
                Negation(compare("corPred", "<=", 5)), self.table
            )

    def test_index_only_column_fetch(self):
        rows = self.index.lookup_rows(
            compare("corPred", "<=", 50), self.table
        )
        keys = self.index.entries_for_rows("joinKey", rows)
        expected = self.table.column("joinKey")[rows]
        assert (keys == expected).all()

    def test_fetch_unmaterialised_column_raises(self):
        with pytest.raises(CatalogError, match="does not materialise"):
            self.index.entries_for_rows("payload", np.array([0]))

    def test_empty_result_range(self):
        got = self.index.lookup_rows(
            compare("corPred", ">", 10_000), self.table
        )
        assert len(got) == 0
