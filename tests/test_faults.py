"""Unit tests for the fault-injection layer (plans, injector, retries)."""

import pytest

from repro.errors import (
    FaultSpecError,
    QueryAbortError,
    SimulationError,
    TransferFaultError,
)
from repro.faults import FaultInjector, FaultPlan, ScanFaultHook, CrashSignal
from repro.faults.plan import (
    AbortEvent,
    CrashEvent,
    MessageEvent,
    SlowEvent,
    SpillEvent,
)
from repro.net.transfer import RetryPolicy, deliver_with_retry
from repro.sim.trace import Trace


class TestFaultPlanParsing:
    def test_full_spec_round_trips(self):
        spec = ("crash:w7@scan,crash:w2@shuffle,slow:w3x5,"
                "drop:shuffle:0.01,trunc:shuffle:0.02,dup:transfer:0.05,"
                "spill:x0.5,abort:scan:2")
        plan = FaultPlan.from_spec(spec)
        assert plan.spec() == spec
        assert FaultPlan.from_spec(plan.spec()).events == plan.events

    def test_typed_views(self):
        plan = FaultPlan.from_spec(
            "crash:w7@scan,slow:w3x5,drop:shuffle:0.01,spill:x0.5,"
            "abort:join:3"
        )
        assert plan.crash_events() == (CrashEvent(7, "scan"),)
        assert plan.slow_events() == (SlowEvent(3, 5.0),)
        assert plan.message_events("shuffle") == (
            MessageEvent("drop", "shuffle", 0.01),
        )
        assert plan.message_events("transfer") == ()
        assert plan.spill_factor() == 0.5
        assert plan.abort_counts() == {"join": 3}

    def test_whitespace_and_case_tolerated(self):
        plan = FaultPlan.from_spec("  CRASH:w1@scan , slow:w2x2 ")
        assert plan.spec() == "crash:w1@scan,slow:w2x2"

    def test_abort_count_defaults_to_one(self):
        plan = FaultPlan.from_spec("abort:scan")
        assert plan.events == (AbortEvent("scan", 1),)

    def test_spill_event(self):
        plan = FaultPlan.from_spec("spill:x2")
        assert plan.events == (SpillEvent(2.0),)

    @pytest.mark.parametrize("bad", [
        "",
        "   ,  ,",
        "crash:w7@join",           # not a crash phase
        "crash:7@scan",            # missing the w
        "crash:w7",                # missing detail
        "slow:w3x0.5",             # factor < 1
        "slow:w3",                 # missing factor
        "drop:shuffle:0",          # prob must be > 0
        "drop:shuffle:1.5",        # prob must be <= 1
        "drop:disk:0.1",           # unknown channel
        "drop:shuffle:lots",       # non-numeric prob
        "spill:x0",                # factor must be > 0
        "spill:half",              # malformed
        "abort:fetch:1",           # unknown phase
        "abort:scan:0",            # count must be >= 1
        "abort:scan:many",         # non-numeric count
        "frobnicate:w1@scan",      # unknown kind
        "crash:w7@scan,crash:w7@shuffle",  # a worker dies only once
    ])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            FaultPlan.from_spec(bad)


class TestRetryPolicy:
    def test_backoff_grows_geometrically(self):
        policy = RetryPolicy(backoff_base_seconds=0.5,
                             backoff_multiplier=2.0)
        assert policy.backoff_seconds(1) == 0.5
        assert policy.backoff_seconds(2) == 1.0
        assert policy.backoff_seconds(3) == 2.0

    def test_retry_overhead_sums_timeouts_and_backoffs(self):
        policy = RetryPolicy(max_attempts=4, timeout_seconds=2.0,
                             backoff_base_seconds=0.5,
                             backoff_multiplier=2.0)
        # Two lost attempts: 2*(timeout) + (0.5 + 1.0) backoff.
        assert policy.retry_overhead_seconds(2) == pytest.approx(5.5)
        assert policy.retry_overhead_seconds(0) == 0.0

    def test_deliver_with_retry_exhausts_budget(self):
        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(TransferFaultError) as excinfo:
            deliver_with_retry(
                None, lambda payload, attempt: "drop", policy,
                channel="shuffle", sender=1, destination=2,
            )
        assert excinfo.value.attempts == 3

    def test_deliver_with_retry_counts_attempts(self):
        outcomes = iter(["drop", "trunc", "ok"])
        outcome, attempts = deliver_with_retry(
            None, lambda payload, attempt: next(outcomes),
            RetryPolicy(max_attempts=4),
            channel="transfer", sender=0, destination=1,
        )
        assert outcome == "ok"
        assert attempts == 3


class TestInjectorDeterminism:
    def test_transfer_outcome_is_call_order_independent(self):
        plan = FaultPlan.from_spec("drop:shuffle:0.3", seed=7)
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        messages = [(s, d) for s in range(6) for d in range(6)]
        forward = [first.transfer_outcome("shuffle", s, d, 1)
                   for s, d in messages]
        backward = [second.transfer_outcome("shuffle", s, d, 1)
                    for s, d in reversed(messages)]
        assert forward == list(reversed(backward))

    def test_seed_changes_outcomes(self):
        messages = [(s, d) for s in range(10) for d in range(10)]

        def roll(seed):
            injector = FaultInjector(
                FaultPlan.from_spec("drop:shuffle:0.3", seed=seed)
            )
            return [injector.transfer_outcome("shuffle", s, d, 1)
                    for s, d in messages]

        assert roll(1) != roll(2)
        assert roll(1) == roll(1)

    def test_epoch_changes_outcomes(self):
        injector = FaultInjector(FaultPlan.from_spec("drop:shuffle:0.3"))
        before = [injector.transfer_outcome("shuffle", s, 0, 1)
                  for s in range(20)]
        injector.bump_epoch()
        after = [injector.transfer_outcome("shuffle", s, 0, 1)
                 for s in range(20)]
        assert before != after

    def test_unaffected_channel_is_clean(self):
        injector = FaultInjector(FaultPlan.from_spec("drop:shuffle:1"))
        assert injector.transfer_outcome("transfer", 0, 1, 1) == "ok"


class TestInjectorEvents:
    def test_scan_crash_fires_once_at_midpoint(self):
        injector = FaultInjector(FaultPlan.from_spec("crash:w7@scan"))
        assert injector.scan_crash_block(3, 10) is None
        assert injector.scan_crash_block(7, 10) == 5
        # A worker dies only once, even across retries.
        assert injector.scan_crash_block(7, 10) is None

    def test_shuffle_crash_respects_live_set(self):
        injector = FaultInjector(
            FaultPlan.from_spec("crash:w2@shuffle,crash:w5@shuffle")
        )
        assert injector.shuffle_crashes([0, 1, 2, 3]) == [2]
        # 5 is not live; 2 already died.
        assert injector.shuffle_crashes([0, 1, 2, 3]) == []
        assert injector.shuffle_crashes([5]) == [5]

    def test_scan_hook_raises_crash_signal(self):
        hook = ScanFaultHook(crash_at=2)
        hook.before_block(9, 0, None)
        hook.before_block(9, 1, None)
        with pytest.raises(CrashSignal) as excinfo:
            hook.before_block(9, 2, "partial-stats")
        assert excinfo.value.worker_id == 9
        assert excinfo.value.stats == "partial-stats"

    def test_abort_fires_count_times_then_stops(self):
        injector = FaultInjector(FaultPlan.from_spec("abort:scan:2"))
        for _ in range(2):
            with pytest.raises(QueryAbortError):
                injector.check_abort("scan")
            injector.bump_epoch()
        injector.check_abort("scan")  # budget exhausted: no raise
        injector.check_abort("shuffle")  # other phases never abort
        assert injector.aborts == 2

    def test_slow_factor_and_speculation_threshold(self):
        injector = FaultInjector(FaultPlan.from_spec("slow:w3x5"),
                                 detect_fraction=0.25)
        assert injector.slow_factor(3) == 5.0
        assert injector.slow_factor(4) == 1.0
        injector.record_straggler(3, 5.0, backup=1)
        assert injector.speculations == 1
        assert injector.stragglers == 0
        # Mild slowdown below the detection threshold: no speculation.
        mild = FaultInjector(FaultPlan.from_spec("slow:w3x1.1"),
                             detect_fraction=0.25)
        mild.record_straggler(3, 1.1, backup=1)
        assert mild.speculations == 0
        assert mild.stragglers == 1

    def test_bad_detect_fraction_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultInjector(FaultPlan.from_spec("slow:w1x2"),
                          detect_fraction=0.0)

    def test_spill_budget(self):
        injector = FaultInjector(FaultPlan.from_spec("spill:x0.5"))
        assert injector.spill_budget_rows(1000) == 500.0
        assert injector.spill_budget_rows(0) == 0.0
        clean = FaultInjector(FaultPlan.from_spec("slow:w1x2"))
        assert clean.spill_budget_rows(1000) == 0.0


class TestChargeTrace:
    @staticmethod
    def _scan_trace():
        trace = Trace("test")
        trace.add("scan", "hdfs_scan", 10.0)
        trace.add("shuffle", "shuffle", 4.0, streams_from=("scan",))
        trace.add("join", "jen_join", 6.0, after=("shuffle",))
        return trace

    def test_splice_after_rewires_dependents(self):
        trace = self._scan_trace()
        trace.splice_after("scan", "recovery_0", "recovery", 3.0)
        spliced = trace.phase("recovery_0")
        assert spliced.after == ("scan",)
        assert "recovery_0" in trace.phase("shuffle").streams_from
        assert trace.phase("join").after == ("shuffle",)
        # Insertion order: recovery sits right after its anchor.
        assert trace.names() == ["scan", "recovery_0", "shuffle", "join"]

    def test_splice_after_rejects_duplicates(self):
        trace = self._scan_trace()
        trace.splice_after("scan", "recovery_0", "recovery", 3.0)
        with pytest.raises(SimulationError, match="duplicate"):
            trace.splice_after("scan", "recovery_0", "recovery", 1.0)

    def test_charge_trace_prices_fraction_of_anchor(self):
        injector = FaultInjector(FaultPlan.from_spec("crash:w1@scan"))
        injector.record_scan_crash(1, rows_lost=100, blocks=4, survivors=2)
        trace = self._scan_trace()
        assert injector.charge_trace(trace) == 1
        phase = trace.phase("recovery_0_rescan")
        expected = injector.retry_policy.timeout_seconds + 10.0 / 2
        assert phase.seconds == pytest.approx(expected)
        assert phase.kind == "recovery"
        # The action list drains: charging twice adds nothing.
        assert injector.charge_trace(trace) == 0

    def test_retry_waits_charge_max_per_destination(self):
        plan = FaultPlan.from_spec("drop:shuffle:0.5", seed=3)
        injector = FaultInjector(plan)
        # Manufacture two destinations with different accumulated waits.
        injector._retry_waits = {"shuffle": {1: 4.0, 2: 9.0}}
        injector._retry_messages = {"shuffle": 5}
        trace = self._scan_trace()
        assert injector.charge_trace(trace) == 1
        phase = trace.phase("recovery_0_retry")
        assert phase.seconds == pytest.approx(9.0)  # max, not 13.0
        assert "5 lost shuffle messages" in phase.description

    def test_counters_and_report(self):
        injector = FaultInjector(FaultPlan.from_spec("crash:w1@scan"))
        injector.scan_crash_block(1, 8)
        injector.record_scan_crash(1, rows_lost=7, blocks=8, survivors=3)
        counters = injector.counters()
        assert counters["crashes"] == 1
        assert counters["rows_discarded"] == 7
        assert counters["blocks_reassigned"] == 8
        report = injector.report()
        assert "crash: worker 1 died during scan" in report
        assert "crashes=1" in report
