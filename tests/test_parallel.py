"""Tests for the multicore execution backend (:mod:`repro.parallel`).

Covers the shared-memory table codec (round-trips over every dtype,
empty tables, missing segments), the guarded segment registry, crash
containment (a pool worker dying mid-task must reclaim every segment
and surface a typed error), the backend toggle, and end-to-end
equivalence: the process backend must produce row-identical results to
the sequential engines and the single-node oracle.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import parallel
from repro.errors import ParallelExecutionError, ReproError, ShmError
from repro.parallel import (
    AttachedTable,
    ShmRegistry,
    export_table,
    leaked_segments,
    set_execution_backend,
)
from repro.parallel.pool import ProcessBackend
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table


def _all_dtypes_table(num_rows: int = 64) -> Table:
    schema = Schema([
        Column("i32", DataType.INT32),
        Column("i64", DataType.INT64),
        Column("f64", DataType.FLOAT64),
        Column("day", DataType.DATE),
        Column("tag", DataType.DICT_STRING, width_bytes=12),
    ])
    rng = np.random.default_rng(7)
    return Table(schema, {
        "i32": rng.integers(-100, 100, num_rows).astype(np.int32),
        "i64": rng.integers(0, 1 << 40, num_rows).astype(np.int64),
        "f64": rng.random(num_rows),
        "day": rng.integers(0, 20_000, num_rows).astype(np.int32),
        "tag": rng.integers(0, 3, num_rows).astype(np.int32),
    }, dictionaries={
        "tag": np.array(["ash", "beech", "cedar"], dtype=object),
    })


@pytest.fixture
def registry():
    registry = ShmRegistry()
    yield registry
    registry.close_all()
    assert leaked_segments(registry.prefix) == []


# ----------------------------------------------------------------------
# ShmTable codec round trips
# ----------------------------------------------------------------------
class TestShmRoundTrip:
    def test_all_dtypes(self, registry):
        table = _all_dtypes_table()
        handle = export_table(table, registry)
        with AttachedTable(handle) as attached:
            view = attached.table
            assert view.schema == table.schema
            assert view.to_rows() == table.to_rows()
            copy = attached.materialize()
        # The materialized copy must survive the segment's release.
        registry.release(handle.segment)
        assert copy.to_rows() == table.to_rows()
        assert list(copy.dictionary("tag")) == ["ash", "beech", "cedar"]

    def test_empty_table_has_no_segment(self, registry):
        table = Table.empty(_all_dtypes_table().schema)
        handle = export_table(table, registry)
        assert handle.segment is None
        assert handle.num_rows == 0
        with AttachedTable(handle) as attached:
            materialized = attached.materialize()
        assert materialized.num_rows == 0
        assert materialized.schema == table.schema

    def test_zero_row_slice_round_trips(self, registry):
        table = _all_dtypes_table().slice(10, 10)
        assert table.num_rows == 0
        handle = export_table(table, registry)
        with AttachedTable(handle) as attached:
            assert attached.materialize().to_rows() == []

    def test_single_row(self, registry):
        table = _all_dtypes_table(1)
        handle = export_table(table, registry)
        with AttachedTable(handle) as attached:
            assert attached.materialize().to_rows() == table.to_rows()

    def test_missing_segment_raises_typed_error(self, registry):
        handle = export_table(_all_dtypes_table(), registry)
        registry.release(handle.segment)
        with pytest.raises(ShmError, match="segment"):
            AttachedTable(handle)


# ----------------------------------------------------------------------
# Segment registry
# ----------------------------------------------------------------------
class TestShmRegistry:
    def test_create_release_unlinks(self, registry):
        segment = registry.create(128)
        name = segment.name
        registry.detach(segment)
        assert name in registry.owned_names()
        registry.release(name)
        assert registry.owned_names() == []
        assert leaked_segments(registry.prefix) == []

    def test_release_tolerates_already_gone(self, registry):
        segment = registry.create(64)
        registry.detach(segment)
        registry.release(segment.name)
        registry.release(segment.name)  # second release must not raise

    def test_sweep_reclaims_disowned_orphans(self, registry):
        from multiprocessing import shared_memory

        from repro.parallel.shm import disown_segment

        orphan = shared_memory.SharedMemory(
            create=True, size=64, name=f"{registry.prefix}orphan"
        )
        disown_segment(orphan)
        orphan.close()
        assert leaked_segments(registry.prefix) != []
        swept = registry.sweep()
        assert f"{registry.prefix}orphan" in swept
        assert leaked_segments(registry.prefix) == []


# ----------------------------------------------------------------------
# Backend toggle
# ----------------------------------------------------------------------
class TestBackendToggle:
    def test_set_returns_previous_and_restores(self):
        previous = set_execution_backend("process", workers=2)
        try:
            assert previous == "sequential"
            assert parallel.parallel_enabled()
            assert parallel.pool_workers() == 2
        finally:
            assert set_execution_backend(previous) == "process"
        assert not parallel.parallel_enabled()

    def test_rejects_unknown_backend(self):
        with pytest.raises(ReproError, match="unknown execution backend"):
            set_execution_backend("threads")

    def test_rejects_nonpositive_pool(self):
        with pytest.raises(ReproError, match="workers"):
            set_execution_backend("process", workers=0)
        assert not parallel.parallel_enabled()


# ----------------------------------------------------------------------
# Crash containment
# ----------------------------------------------------------------------
def _die_mid_task(_payload):
    os._exit(13)


def _echo(payload):
    return payload


class TestCrashContainment:
    def test_worker_death_reclaims_segments_and_recovers(self):
        backend = ProcessBackend(workers=2)
        try:
            # Park an input segment in the pool's registry so the crash
            # path has something real to reclaim.
            backend.export_transient(_all_dtypes_table())
            assert backend.registry.owned_names() != []
            with pytest.raises(ParallelExecutionError, match="died"):
                backend.run_all(_die_mid_task, [None])
            # The guarded shutdown must have unlinked everything.
            assert backend.registry.owned_names() == []
            assert leaked_segments(backend.registry.prefix) == []
            # The backend is reusable: the next call forks a new pool.
            assert backend.run_all(_echo, [1, 2, 3]) == [1, 2, 3]
        finally:
            backend.shutdown()
        assert leaked_segments(backend.registry.prefix) == []


# ----------------------------------------------------------------------
# End-to-end equivalence: process == sequential == oracle
# ----------------------------------------------------------------------
class TestProcessBackendEndToEnd:
    @pytest.fixture(scope="class")
    def case(self):
        from repro.testkit import generator

        return generator.generate_data_case(2015)

    @pytest.mark.parametrize("algorithm", ["repartition", "zigzag"])
    def test_row_identical_to_sequential_and_oracle(self, case, algorithm):
        from repro.testkit import generator, oracle

        sequential = generator.run_cell(
            case, generator.ConfigCell(algorithm, workers=4)
        )
        process = generator.run_cell(
            case, generator.ConfigCell(
                algorithm, workers=4, backend="process")
        )
        assert oracle.compare_tables(
            process, case.oracle_rows(), label=f"{algorithm}/process"
        ) is None
        assert sorted(process.to_rows()) == sorted(sequential.to_rows())
        assert parallel.execution_backend() == "sequential"

    def test_no_segments_leak_after_runs(self):
        from repro.parallel.shm import SESSION_PREFIX

        parallel.shutdown_backend()
        # Scoped to this process's session prefix so a concurrently
        # running repro process cannot trip the check.
        assert leaked_segments(SESSION_PREFIX) == []
