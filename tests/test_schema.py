"""Unit tests for repro.relational.schema."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.relational.schema import Column, DataType, Schema


class TestDataType:
    def test_numpy_dtypes(self):
        assert DataType.INT32.numpy_dtype() == np.dtype(np.int32)
        assert DataType.INT64.numpy_dtype() == np.dtype(np.int64)
        assert DataType.FLOAT64.numpy_dtype() == np.dtype(np.float64)
        assert DataType.DATE.numpy_dtype() == np.dtype(np.int32)
        assert DataType.DICT_STRING.numpy_dtype() == np.dtype(np.int32)

    def test_default_widths(self):
        assert DataType.INT32.default_width() == 4
        assert DataType.INT64.default_width() == 8
        assert DataType.DATE.default_width() == 4


class TestColumn:
    def test_width_defaults_to_type_width(self):
        assert Column("a", DataType.INT32).width() == 4

    def test_width_override(self):
        assert Column("url", DataType.DICT_STRING, width_bytes=46).width() == 46


class TestSchema:
    def setup_method(self):
        self.schema = Schema([
            Column("a", DataType.INT32),
            Column("b", DataType.INT64),
            Column("s", DataType.DICT_STRING, width_bytes=20),
        ])

    def test_names_in_order(self):
        assert self.schema.names == ("a", "b", "s")

    def test_len_and_iter(self):
        assert len(self.schema) == 3
        assert [c.name for c in self.schema] == ["a", "b", "s"]

    def test_column_lookup(self):
        assert self.schema.column("b").dtype is DataType.INT64

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError, match="unknown column"):
            self.schema.column("zzz")

    def test_has_column(self):
        assert self.schema.has_column("a")
        assert not self.schema.has_column("zzz")

    def test_index_of(self):
        assert self.schema.index_of("b") == 1

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([Column("a", DataType.INT32),
                    Column("a", DataType.INT64)])

    def test_project_orders_and_subsets(self):
        projected = self.schema.project(["s", "a"])
        assert projected.names == ("s", "a")

    def test_project_unknown_raises(self):
        with pytest.raises(SchemaError):
            self.schema.project(["nope"])

    def test_rename(self):
        renamed = self.schema.rename({"a": "x"})
        assert renamed.names == ("x", "b", "s")
        # width preserved
        assert renamed.column("s").width() == 20

    def test_concat(self):
        other = Schema([Column("z", DataType.DATE)])
        combined = self.schema.concat(other)
        assert combined.names == ("a", "b", "s", "z")

    def test_row_width_full_and_projected(self):
        assert self.schema.row_width() == 4 + 8 + 20
        assert self.schema.row_width(["a", "s"]) == 24

    def test_equality(self):
        same = Schema([
            Column("a", DataType.INT32),
            Column("b", DataType.INT64),
            Column("s", DataType.DICT_STRING, width_bytes=20),
        ])
        assert self.schema == same
        assert self.schema != Schema([Column("a", DataType.INT32)])
