"""Tests for star-schema SQL: multiple database tables in FROM."""

import numpy as np
import pytest

from repro.relational.operators import join_tables
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table
from repro.sql import SqlSession
from repro.sql.lexer import SqlError
from repro.query.executor import reference_join
from tests.conftest import build_test_warehouse

NUM_PRODUCTS = 120
NUM_REGIONS = 8


def dimensions(paper_workload):
    fact = paper_workload.t_table.with_column(
        Column("product_id", DataType.INT32),
        (paper_workload.t_table.column("dummy2") % NUM_PRODUCTS)
        .astype(np.int32),
    )
    products = Table(
        Schema([Column("product_id", DataType.INT32),
                Column("category", DataType.INT32),
                Column("region_id", DataType.INT32)]),
        {
            "product_id": np.arange(NUM_PRODUCTS, dtype=np.int32),
            "category": (np.arange(NUM_PRODUCTS) % 10).astype(np.int32),
            "region_id": (np.arange(NUM_PRODUCTS) % NUM_REGIONS)
            .astype(np.int32),
        },
    )
    regions = Table(
        Schema([Column("region_id", DataType.INT32),
                Column("zone", DataType.INT32)]),
        {
            "region_id": np.arange(NUM_REGIONS, dtype=np.int32),
            "zone": (np.arange(NUM_REGIONS) % 3).astype(np.int32),
        },
    )
    return fact, products, regions


@pytest.fixture()
def star_session(paper_workload):
    warehouse = build_test_warehouse(paper_workload)
    fact, products, regions = dimensions(paper_workload)
    warehouse.load_db_table("F", fact, distribute_on="uniqKey")
    warehouse.load_db_table("P", products, distribute_on="product_id")
    warehouse.load_db_table("R", regions, distribute_on="region_id")
    return SqlSession(warehouse), paper_workload


STAR_SQL = """
    SELECT L.joinKey, COUNT(*)
    FROM F, P, L
    WHERE F.product_id = P.product_id
      AND P.category <= 2
      AND F.joinKey = L.joinKey
      AND L.corPred <= {c}
    GROUP BY L.joinKey
"""


class TestStarTranslation:
    def test_prejoin_plan(self, star_session, paper_workload):
        session, workload = star_session
        translation = session.explain(
            STAR_SQL.format(c=workload.l_thresholds.cor_threshold)
        )
        assert translation.needs_prejoin()
        assert translation.fact_table == "F"
        assert len(translation.prejoins) == 1
        step = translation.prejoins[0]
        assert step.right_table == "P"
        assert step.left_key == "product_id"
        assert "joinKey" in translation.fact_projection

    def test_snowflake_chain(self, star_session, paper_workload):
        session, workload = star_session
        translation = session.explain("""
            SELECT L.joinKey, COUNT(*)
            FROM F, P, R, L
            WHERE F.product_id = P.product_id
              AND P.region_id = R.region_id
              AND R.zone = 1
              AND F.joinKey = L.joinKey
            GROUP BY L.joinKey
        """)
        assert [s.right_table for s in translation.prejoins] == ["P", "R"]

    def test_disconnected_dimension_rejected(self, star_session):
        session, _ = star_session
        with pytest.raises(SqlError, match="no join condition"):
            session.explain("""
                SELECT L.joinKey, COUNT(*)
                FROM F, R, L
                WHERE F.joinKey = L.joinKey
                GROUP BY L.joinKey
            """)

    def test_two_table_query_unaffected(self, star_session, paper_workload):
        session, workload = star_session
        translation = session.explain("""
            SELECT L.joinKey, COUNT(*) FROM T, L
            WHERE T.joinKey = L.joinKey GROUP BY L.joinKey
        """)
        assert not translation.needs_prejoin()
        assert translation.query.db_table == "T"

    def test_two_hdfs_tables_rejected(self, star_session):
        session, _ = star_session
        with pytest.raises(SqlError, match="exactly one FROM table"):
            session.explain(
                "SELECT L.joinKey, COUNT(*) FROM L, L x "
                "WHERE L.joinKey = x.joinKey GROUP BY L.joinKey"
            )


class TestStarExecution:
    def reference(self, workload, session, query):
        fact, products, _regions = dimensions(workload)
        from repro.relational.expressions import compare
        filtered = products.filter(
            compare("category", "<=", 2).evaluate(products)
        ).project(["product_id"]).rename({"product_id": "__pid"})
        enriched = join_tables(
            build=filtered, probe=fact,
            build_key="__pid", probe_key="product_id",
        ).project(["joinKey", "predAfterJoin", "corPred", "indPred"])
        return reference_join(enriched, workload.l_table, query)

    def test_star_sql_matches_reference(self, star_session,
                                        paper_workload):
        session, workload = star_session
        sql = STAR_SQL.format(c=workload.l_thresholds.cor_threshold)
        result = session.execute(sql, algorithm="zigzag")
        query = result.query
        reference = self.reference(workload, session, query)
        assert sorted(result.rows()) == sorted(reference.to_rows())

    def test_algorithms_agree_on_star_sql(self, star_session,
                                          paper_workload):
        session, workload = star_session
        sql = STAR_SQL.format(c=workload.l_thresholds.cor_threshold)
        zigzag = session.execute(sql, algorithm="zigzag")
        db_side = session.execute(sql, algorithm="db(BF)")
        assert sorted(zigzag.rows()) == sorted(db_side.rows())

    def test_repeat_execution_derives_fresh_tables(self, star_session,
                                                   paper_workload):
        session, workload = star_session
        sql = STAR_SQL.format(c=workload.l_thresholds.cor_threshold)
        first = session.execute(sql, algorithm="repartition")
        second = session.execute(sql, algorithm="repartition")
        assert sorted(first.rows()) == sorted(second.rows())
        # Two distinct derived tables were registered.
        assert first.query.db_table != second.query.db_table

    def test_auto_mode_on_star(self, star_session, paper_workload):
        session, workload = star_session
        sql = STAR_SQL.format(c=workload.l_thresholds.cor_threshold)
        result = session.execute(sql)
        direct = session.execute(sql, algorithm="zigzag")
        assert sorted(result.rows()) == sorted(direct.rows())
