"""Tests for the benchmark harness, experiment registry and reporting."""

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    ShapeCheck,
    experiment_by_id,
)
from repro.bench.harness import WarehouseCache, make_spec, run_algorithms
from repro.bench.reporting import format_rows, format_series
from repro.errors import ReproError


class TestHarness:
    def test_make_spec_scales_paper_sizes(self):
        spec = make_spec(0.1, 0.4, s_l=0.1, scale=1 / 100_000)
        assert spec.t_rows == 16_000
        assert spec.l_rows == 150_000
        assert spec.n_keys == 160

    def test_cache_reuses_setups(self):
        cache = WarehouseCache(scale=1 / 100_000)
        first = cache.setup(0.1, 0.2, s_l=0.1)
        second = cache.setup(0.1, 0.2, s_l=0.1)
        assert first is second
        cache.clear()
        assert cache.setup(0.1, 0.2, s_l=0.1) is not first

    def test_setup_has_paper_indexes(self):
        cache = WarehouseCache(scale=1 / 100_000)
        setup = cache.setup(0.1, 0.2, s_l=0.1)
        worker = setup.warehouse.database.workers[0]
        assert worker.find_covering_index(
            "T", ["corPred", "indPred", "joinKey"]
        ) is not None

    def test_run_algorithms(self):
        cache = WarehouseCache(scale=1 / 100_000)
        setup = cache.setup(0.1, 0.2, s_l=0.1)
        results = run_algorithms(setup, ["zigzag", "repartition"])
        assert set(results) == {"zigzag", "repartition"}
        assert results["zigzag"].result.to_rows() == \
            results["repartition"].result.to_rows()


class TestExperimentRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {"table1", "fig8", "fig9", "fig10", "fig11", "fig12",
                    "fig13", "fig14", "fig15"}
        assert expected <= set(EXPERIMENTS)

    def test_lookup(self):
        assert experiment_by_id("table1").experiment_id == "table1"
        with pytest.raises(ReproError, match="unknown experiment"):
            experiment_by_id("fig99")

    def test_table1_runs_and_passes(self):
        cache = WarehouseCache(scale=1 / 100_000)
        result = EXPERIMENTS["table1"].run(cache)
        assert isinstance(result, ExperimentResult)
        assert result.rows
        assert result.all_passed(), result.to_report()

    def test_report_includes_checks(self):
        result = ExperimentResult(
            experiment_id="x", title="t", headers=["a"],
            rows=[{"a": 1.0}],
            checks=[ShapeCheck("claim", True), ShapeCheck("bad", False)],
        )
        report = result.to_report()
        assert "[PASS] claim" in report
        assert "[FAIL] bad" in report
        assert not result.all_passed()


class TestReporting:
    def test_format_rows_alignment(self):
        text = format_rows(
            ["name", "seconds"],
            [{"name": "zigzag", "seconds": 93.9},
             {"name": "repartition", "seconds": 1234.5}],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "zigzag" in text and "1,23" in text

    def test_format_rows_small_floats(self):
        text = format_rows(["sigma_L"], [{"sigma_L": 0.001}])
        assert "0.001" in text

    def test_format_series_pivots(self):
        rows = [
            {"sigma_L": 0.1, "algorithm": "db", "seconds": 10.0},
            {"sigma_L": 0.2, "algorithm": "db", "seconds": 20.0},
            {"sigma_L": 0.1, "algorithm": "zigzag", "seconds": 5.0},
            {"sigma_L": 0.2, "algorithm": "zigzag", "seconds": 6.0},
        ]
        text = format_series(rows, "sigma_L", "seconds", "algorithm",
                             title="panel")
        lines = text.splitlines()
        assert lines[0] == "panel"
        assert any(line.startswith("db") for line in lines)
        assert any(line.startswith("zigzag") for line in lines)

    def test_format_series_missing_point(self):
        rows = [
            {"x": 1, "algorithm": "a", "seconds": 1.0},
            {"x": 2, "algorithm": "b", "seconds": 2.0},
        ]
        text = format_series(rows, "x", "seconds", "algorithm")
        assert "-" in text


class TestRegistryCompleteness:
    def test_every_experiment_in_generator_order(self):
        """scripts/generate_experiments_md.py must cover the registry."""
        import importlib.util
        import pathlib

        script = pathlib.Path(__file__).parent.parent / "scripts" / \
            "generate_experiments_md.py"
        spec = importlib.util.spec_from_file_location("gen_md", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert set(module.ORDER) == set(EXPERIMENTS)

    def test_every_experiment_has_a_benchmark(self):
        """Each registered experiment is wired to a pytest-benchmark."""
        import pathlib

        bench_dir = pathlib.Path(__file__).parent.parent / "benchmarks"
        text = "\n".join(
            path.read_text() for path in bench_dir.glob("bench_*.py")
        )
        for experiment_id in EXPERIMENTS:
            assert f'"{experiment_id}"' in text, experiment_id
