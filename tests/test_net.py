"""Unit tests for the network topology and transfer-pattern math."""

import pytest

from repro.config import ClusterConfig, MB
from repro.errors import SimulationError
from repro.net.topology import Cluster, default_topology
from repro.net.transfer import (
    TransferPattern,
    broadcast_volume,
    grouped_assignment,
    parallel_transfer_seconds,
    shuffle_seconds,
)


@pytest.fixture
def topology():
    return default_topology(ClusterConfig())


class TestTopology:
    def test_default_matches_paper(self, topology):
        assert topology.hdfs.nodes == 30
        assert topology.database.nodes == 5  # servers share 10 Gbit NICs
        assert topology.switch_bytes_per_s == 2500 * MB

    def test_invalid_cluster(self):
        with pytest.raises(SimulationError):
            Cluster("x", 0, 1.0)
        with pytest.raises(SimulationError):
            Cluster("x", 1, 0.0)

    def test_inter_cluster_bottleneck_is_min(self, topology):
        # 30 HDFS senders at 125 MB/s = 3750 MB/s, capped by the 20 Gbit
        # switch at 2500 MB/s.
        bandwidth = topology.inter_cluster_bandwidth(30, 5, "hdfs")
        assert bandwidth == pytest.approx(2500 * MB)

    def test_few_senders_become_bottleneck(self, topology):
        bandwidth = topology.inter_cluster_bandwidth(2, 5, "hdfs")
        assert bandwidth == pytest.approx(2 * 125 * MB)

    def test_db_side_sender(self, topology):
        bandwidth = topology.inter_cluster_bandwidth(5, 30, "db")
        assert bandwidth == pytest.approx(2500 * MB)

    def test_bad_sender_side(self, topology):
        with pytest.raises(SimulationError):
            topology.inter_cluster_bandwidth(1, 1, "mainframe")


class TestGroupedAssignment:
    def test_even_groups(self):
        groups = grouped_assignment(30, 30)
        assert len(groups) == 30
        assert all(len(g) == 1 for g in groups)

    def test_more_jen_than_db(self):
        groups = grouped_assignment(30, 10)
        assert len(groups) == 10
        assert sorted(len(g) for g in groups) == [3] * 10
        flattened = [w for g in groups for w in g]
        assert sorted(flattened) == list(range(30))

    def test_more_db_than_jen(self):
        groups = grouped_assignment(4, 10)
        assert len(groups) == 10
        assert all(len(g) == 1 for g in groups)

    def test_invalid_counts(self):
        with pytest.raises(SimulationError):
            grouped_assignment(0, 1)


class TestBroadcastVolume:
    def test_direct_multiplies(self):
        assert broadcast_volume(100.0, 30) == 3000.0

    def test_relay_crosses_once(self):
        assert broadcast_volume(
            100.0, 30, TransferPattern.BROADCAST_RELAY
        ) == 100.0

    def test_non_broadcast_pattern_rejected(self):
        with pytest.raises(SimulationError):
            broadcast_volume(1.0, 2, TransferPattern.GROUPED_INGEST)


class TestTransferSeconds:
    def test_zero_volume(self, topology):
        assert parallel_transfer_seconds(0, topology, 30, 5, "hdfs") == 0.0

    def test_negative_volume_rejected(self, topology):
        with pytest.raises(SimulationError):
            parallel_transfer_seconds(-1, topology, 30, 5, "hdfs")

    def test_endpoint_cap_applies(self, topology):
        slow = parallel_transfer_seconds(
            2500 * MB, topology, 30, 5, "hdfs",
            per_endpoint_bytes_per_s=1 * MB,
        )
        fast = parallel_transfer_seconds(2500 * MB, topology, 30, 5, "hdfs")
        assert fast == pytest.approx(1.0)
        assert slow == pytest.approx(2500 / 30)


class TestShuffle:
    def test_zero_and_negative(self, topology):
        assert shuffle_seconds(0, topology, 30, 1 * MB) == 0.0
        with pytest.raises(SimulationError):
            shuffle_seconds(-1, topology, 30, 1 * MB)

    def test_local_fraction_excluded(self, topology):
        # With one worker everything is local: no network time at all.
        assert shuffle_seconds(10 * MB, topology, 1, 1 * MB) == 0.0

    def test_scales_inversely_with_workers(self, topology):
        few = shuffle_seconds(2900 * MB, topology, 10, 10 * MB)
        many = shuffle_seconds(2900 * MB, topology, 29, 10 * MB)
        assert few > many

    def test_goodput_capped_by_nic(self, topology):
        capped = shuffle_seconds(1000 * MB, topology, 30, 10_000 * MB)
        at_nic = shuffle_seconds(1000 * MB, topology, 30, 125 * MB)
        assert capped == pytest.approx(at_nic)
