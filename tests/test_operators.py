"""Unit and property tests for repro.relational.operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TableError
from repro.relational.operators import (
    hash_join_indices,
    join_tables,
    partition_by_hash,
    semi_join_mask,
    unique_keys,
)
from repro.relational.table import Table


def naive_join_pairs(build, probe):
    """Quadratic reference: all (build_idx, probe_idx) with equal keys."""
    pairs = []
    for bi, bk in enumerate(build):
        for pi, pk in enumerate(probe):
            if bk == pk:
                pairs.append((bi, pi))
    return sorted(pairs)


class TestHashJoinIndices:
    def test_simple(self):
        build = np.array([1, 2, 2, 3])
        probe = np.array([2, 3, 9])
        bi, pi = hash_join_indices(build, probe)
        assert sorted(zip(bi.tolist(), pi.tolist())) == [
            (1, 0), (2, 0), (3, 1)
        ]

    def test_empty_sides(self):
        empty = np.array([], dtype=np.int64)
        some = np.array([1, 2])
        for build, probe in [(empty, some), (some, empty), (empty, empty)]:
            bi, pi = hash_join_indices(build, probe)
            assert len(bi) == 0 and len(pi) == 0

    def test_no_matches(self):
        bi, pi = hash_join_indices(np.array([1, 2]), np.array([3, 4]))
        assert len(bi) == 0

    def test_duplicates_multiply(self):
        bi, pi = hash_join_indices(np.array([7, 7]), np.array([7, 7, 7]))
        assert len(bi) == 6

    @given(
        build=st.lists(st.integers(0, 20), max_size=60),
        probe=st.lists(st.integers(0, 20), max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_reference(self, build, probe):
        bi, pi = hash_join_indices(
            np.array(build, dtype=np.int64), np.array(probe, dtype=np.int64)
        )
        assert sorted(zip(bi.tolist(), pi.tolist())) == \
            naive_join_pairs(build, probe)


class TestJoinTables:
    def test_prefixing_and_values(self, small_table):
        joined = join_tables(small_table, small_table, "k", "k",
                             build_prefix="l_", probe_prefix="r_")
        assert set(joined.schema.names) == {"l_k", "l_v", "r_k", "r_v"}
        # keys equal on both sides of every output row
        assert (joined.column("l_k") == joined.column("r_k")).all()
        # 1,3,5 match once; 2 matches 2x2
        assert joined.num_rows == 3 + 4

    def test_collision_without_prefix_raises(self, small_table):
        with pytest.raises(TableError, match="collision"):
            join_tables(small_table, small_table, "k", "k")


class TestSemiJoinMask:
    def test_basic(self):
        mask = semi_join_mask(np.array([1, 2, 3, 4]), np.array([2, 4, 9]))
        assert mask.tolist() == [False, True, False, True]

    def test_empty_membership(self):
        mask = semi_join_mask(np.array([1, 2]), np.array([], dtype=np.int64))
        assert mask.tolist() == [False, False]

    def test_empty_keys(self):
        assert len(semi_join_mask(np.array([], dtype=np.int64),
                                  np.array([1]))) == 0

    @given(
        keys=st.lists(st.integers(-50, 50), max_size=80),
        members=st.lists(st.integers(-50, 50), max_size=80),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_python_membership(self, keys, members):
        mask = semi_join_mask(
            np.array(keys, dtype=np.int64), np.array(members, dtype=np.int64)
        )
        expected = [k in set(members) for k in keys]
        assert mask.tolist() == expected


class TestPartitionByHash:
    def test_conserves_and_separates(self, small_table):
        parts = partition_by_hash(small_table, "k", 3)
        assert sum(p.num_rows for p in parts) == small_table.num_rows
        # Same key never lands in two partitions.
        seen = {}
        for index, part in enumerate(parts):
            for key in np.unique(part.column("k")):
                assert seen.setdefault(int(key), index) == index

    def test_invalid_partition_count(self, small_table):
        with pytest.raises(TableError):
            partition_by_hash(small_table, "k", 0)


def test_unique_keys_sorted():
    assert unique_keys(np.array([3, 1, 3, 2])).tolist() == [1, 2, 3]
