"""Tests for the query-service plane (:mod:`repro.service`).

The integration tests replay the same query stream concurrently and
serially over one shared warehouse and require bit-identical results —
the service plane must never change an answer, only its timing.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro import reference_join
from repro.errors import JoinError, ServiceError
from repro.service import (
    AdmissionConfig,
    AdmissionController,
    FairSharePolicy,
    QueryService,
    ServiceConfig,
    SharedCluster,
    StreamSpec,
    build_template_query,
    generate_query_stream,
    schedule_trace,
)
from repro.sim.engine import SimEngine
from repro.sim.trace import Trace

ALL_ALGORITHMS = [
    "db", "db(BF)", "broadcast", "repartition", "repartition(BF)",
    "zigzag", "zigzag-db", "semijoin", "perf",
]


def _plain_config(slots: int) -> ServiceConfig:
    """Caches and feedback off: every submission runs the data plane."""
    return ServiceConfig(
        admission=AdmissionConfig(slots=slots, max_queue=64,
                                  queue_timeout=1e9, shed_fraction=None),
        enable_result_cache=False,
        enable_bloom_cache=False,
        enable_feedback=False,
    )


# ----------------------------------------------------------------------
# Concurrent == serial == reference, for every algorithm
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def stream_runs(loaded_warehouse, paper_query):
    """The full algorithm roster run twice: 16 slots, then one."""

    def run(slots):
        service = QueryService(loaded_warehouse, _plain_config(slots))
        tickets = {
            name: service.submit(paper_query, tenant=f"t{index % 3}",
                                 at=0.0, algorithm=name)
            for index, name in enumerate(ALL_ALGORITHMS)
        }
        return tickets, service.drain()

    return {"concurrent": run(16), "serial": run(1)}


@pytest.fixture(scope="module")
def reference_result(paper_workload, paper_query):
    return reference_join(
        paper_workload.t_table, paper_workload.l_table, paper_query
    )


class TestStreamCorrectness:
    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_concurrent_matches_reference(self, name, stream_runs,
                                          reference_result):
        tickets, _report = stream_runs["concurrent"]
        assert tickets[name].result().to_rows() == reference_result.to_rows()

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_serial_matches_concurrent(self, name, stream_runs):
        concurrent, _ = stream_runs["concurrent"]
        serial, _ = stream_runs["serial"]
        assert (serial[name].result().to_rows()
                == concurrent[name].result().to_rows())

    def test_all_completed(self, stream_runs):
        for tickets, report in stream_runs.values():
            assert len(report.completed()) == len(ALL_ALGORITHMS)
            assert not report.rejected()
            assert all(ticket.done for ticket in tickets.values())

    def test_sustains_eight_in_flight(self, stream_runs):
        _tickets, report = stream_runs["concurrent"]
        gauge = report.metrics.get("admission.in_flight")
        assert gauge.high >= 8

    def test_serial_never_overlaps(self, stream_runs):
        _tickets, report = stream_runs["serial"]
        assert report.metrics.get("admission.in_flight").high == 1

    def test_concurrent_makespan_beats_serial(self, stream_runs):
        _t, concurrent = stream_runs["concurrent"]
        _t, serial = stream_runs["serial"]
        assert concurrent.makespan < serial.makespan
        # And strictly less than the sum of its own per-query times.
        assert concurrent.makespan < concurrent.serial_seconds()

    def test_report_renders(self, stream_runs):
        _tickets, report = stream_runs["concurrent"]
        text = report.render()
        assert "completed" in text and "admission.admitted" in text
        assert report.throughput() > 0


# ----------------------------------------------------------------------
# Semantic caches
# ----------------------------------------------------------------------
class TestCaching:
    def test_result_cache_hit_is_bit_identical(self, loaded_warehouse,
                                               paper_query,
                                               reference_result):
        service = QueryService(loaded_warehouse)
        first = service.submit(paper_query, algorithm="zigzag")
        service.drain()
        repeat = service.submit(paper_query, algorithm="repartition(BF)")
        report = service.drain()
        outcome = repeat.outcome
        assert outcome.cache_hit and outcome.algorithm == "cache"
        assert repeat.result().to_rows() == first.result().to_rows()
        assert repeat.result().to_rows() == reference_result.to_rows()
        # A cache hit never touches either cluster.
        assert report.makespan == pytest.approx(
            service.config.cache_hit_seconds)
        assert service.result_cache.hit_rate() > 0

    def test_bloom_cache_shared_across_plans(self, paper_workload,
                                             loaded_warehouse):
        full = build_template_query(paper_workload, 1.0, 1.0)
        narrowed = build_template_query(paper_workload, 1.0, 0.5)
        assert full != narrowed
        service = QueryService(loaded_warehouse)
        tickets = [service.submit(query, algorithm="zigzag")
                   for query in (full, narrowed)]
        service.drain()
        # Same T predicate + join key => the merged BF(T') is reused.
        assert service.bloom_builder.cache.hits.value >= 1
        for ticket, query in zip(tickets, (full, narrowed)):
            expected = reference_join(
                paper_workload.t_table, paper_workload.l_table, query
            )
            assert ticket.result().to_rows() == expected.to_rows()

    def test_bloom_builder_uninstalled_after_drain(self, loaded_warehouse,
                                                   paper_query):
        service = QueryService(loaded_warehouse)
        service.submit(paper_query, algorithm="broadcast")
        service.drain()
        assert "build_global_bloom" not in \
            loaded_warehouse.database.__dict__


# ----------------------------------------------------------------------
# Submission API
# ----------------------------------------------------------------------
class TestSubmission:
    def test_unknown_algorithm_rejected_at_submit(self, loaded_warehouse,
                                                  paper_query):
        service = QueryService(loaded_warehouse)
        with pytest.raises(JoinError, match="valid names"):
            service.submit(paper_query, algorithm="hyperjoin")

    def test_negative_arrival_rejected(self, loaded_warehouse, paper_query):
        service = QueryService(loaded_warehouse)
        with pytest.raises(ServiceError):
            service.submit(paper_query, at=-1.0)

    def test_result_before_drain_raises(self, loaded_warehouse,
                                        paper_query):
        service = QueryService(loaded_warehouse)
        ticket = service.submit(paper_query)
        with pytest.raises(ServiceError, match="not executed"):
            ticket.result()

    def test_rejected_ticket_raises(self, loaded_warehouse, paper_query):
        config = ServiceConfig(
            admission=AdmissionConfig(slots=1, max_queue=0),
            enable_result_cache=False,
            enable_bloom_cache=False,
            enable_feedback=False,
        )
        service = QueryService(loaded_warehouse, config)
        service.submit(paper_query, algorithm="broadcast")
        loser = service.submit(paper_query, algorithm="broadcast")
        report = service.drain()
        assert loser.outcome.status == "rejected"
        assert loser.outcome.reject_reason == "queue_full"
        assert len(report.rejected()) == 1
        with pytest.raises(ServiceError, match="rejected"):
            loser.result()


# ----------------------------------------------------------------------
# Admission control (driven directly, no data plane)
# ----------------------------------------------------------------------
def _outcome(event):
    assert event.triggered, "admission event should have resolved"
    return event.value


class TestAdmission:
    def test_immediate_admission_and_queue_full(self):
        engine = SimEngine()
        controller = AdmissionController(engine, AdmissionConfig(
            slots=1, max_queue=1, queue_timeout=100.0, shed_fraction=None))
        first = controller.request("a")
        assert _outcome(first).admitted
        queued = controller.request("a")
        assert not queued.triggered
        assert controller.queue_depth == 1
        overflow = controller.request("a")
        assert _outcome(overflow).reason == "queue_full"
        controller.release(_outcome(first).grant)
        assert _outcome(queued).admitted
        assert controller.in_flight == 1

    def test_queue_timeout(self):
        engine = SimEngine()
        controller = AdmissionController(engine, AdmissionConfig(
            slots=1, max_queue=8, queue_timeout=50.0, shed_fraction=None))
        controller.request("a")
        starved = controller.request("b")
        engine.run()
        outcome = _outcome(starved)
        assert not outcome.admitted and outcome.reason == "timeout"
        assert outcome.queued_seconds == pytest.approx(50.0)

    def test_tenant_quota_queues_despite_free_slots(self):
        engine = SimEngine()
        controller = AdmissionController(engine, AdmissionConfig(
            slots=4, max_queue=8, queue_timeout=1e9, tenant_quota=1,
            shed_fraction=None))
        first = controller.request("a")
        assert _outcome(first).admitted
        second = controller.request("a")
        assert not second.triggered  # over quota, slots free
        other = controller.request("b")
        assert _outcome(other).admitted
        controller.release(_outcome(first).grant)
        assert _outcome(second).admitted

    def test_overload_sheds_best_effort_only(self):
        engine = SimEngine()
        controller = AdmissionController(engine, AdmissionConfig(
            slots=1, max_queue=4, queue_timeout=1e9, shed_fraction=0.5))
        controller.request("a")
        controller.request("a")
        controller.request("a")  # queue depth now 2 = 0.5 * 4
        shed = controller.request("b", priority=1)
        assert _outcome(shed).reason == "overload_shed"
        interactive = controller.request("b", priority=0)
        assert not interactive.triggered  # still queued, not shed

    def test_double_release_raises(self):
        engine = SimEngine()
        controller = AdmissionController(engine, AdmissionConfig(slots=1))
        grant = _outcome(controller.request("a")).grant
        controller.release(grant)
        with pytest.raises(ServiceError, match="released twice"):
            controller.release(grant)

    @pytest.mark.parametrize("kwargs", [
        {"slots": 0},
        {"max_queue": -1},
        {"queue_timeout": 0.0},
        {"tenant_quota": 0},
        {"shed_fraction": 1.5},
    ])
    def test_config_validation(self, kwargs):
        with pytest.raises(ServiceError):
            AdmissionConfig(**kwargs)


class TestFairSharePolicy:
    @staticmethod
    def _request(priority, tenant, seq):
        return SimpleNamespace(priority=priority, tenant=tenant, seq=seq)

    def test_priority_beats_fairness(self):
        policy = FairSharePolicy()
        pending = [self._request(1, "idle", 0), self._request(0, "busy", 1)]
        assert policy.select(pending, {"busy": 5}) == 1

    def test_fair_share_breaks_priority_ties(self):
        policy = FairSharePolicy()
        pending = [self._request(0, "busy", 0), self._request(0, "idle", 1)]
        assert policy.select(pending, {"busy": 3, "idle": 0}) == 1

    def test_fifo_breaks_full_ties(self):
        policy = FairSharePolicy()
        pending = [self._request(0, "a", 7), self._request(0, "a", 3)]
        assert policy.select(pending, {}) == 1

    def test_empty(self):
        assert FairSharePolicy().select([], {}) is None


# ----------------------------------------------------------------------
# Shared-cluster scheduling
# ----------------------------------------------------------------------
class TestSharedScheduling:
    def test_different_classes_overlap(self):
        engine = SimEngine()
        cluster = SharedCluster(engine)
        scan = Trace("scan")
        scan.add("hdfs_scan", "hdfs_scan", 100.0)
        export = Trace("export")
        export.add("db_filter", "db_scan", 80.0)
        schedule_trace(engine, cluster, scan, chunks=4, label="a")
        schedule_trace(engine, cluster, export, chunks=4, label="b")
        assert engine.run() == pytest.approx(100.0)

    def test_same_class_serialises(self):
        engine = SimEngine()
        cluster = SharedCluster(engine)
        for label in ("a", "b"):
            trace = Trace(label)
            trace.add("hdfs_scan", "hdfs_scan", 100.0)
            schedule_trace(engine, cluster, trace, chunks=4, label=label)
        assert engine.run() == pytest.approx(200.0)

    def test_latency_phases_never_contend(self):
        engine = SimEngine()
        cluster = SharedCluster(engine)
        for label in ("a", "b", "c"):
            trace = Trace(label)
            trace.add("startup", "latency", 10.0)
            schedule_trace(engine, cluster, trace, chunks=2, label=label)
        assert engine.run() == pytest.approx(10.0)

    def test_streaming_pipelines_within_a_query(self):
        engine = SimEngine()
        cluster = SharedCluster(engine)
        trace = Trace("pipe")
        trace.add("hdfs_scan", "hdfs_scan", 100.0)
        trace.add("shuffle", "shuffle", 50.0, streams_from=["hdfs_scan"])
        run = schedule_trace(engine, cluster, trace, chunks=4)
        # The consumer's last chunk waits on the producer's: the shuffle
        # finishes one chunk (50/4 s) after the scan, not 50 s after.
        assert engine.run() == pytest.approx(100.0 + 50.0 / 4)
        assert run.finished and run.end_time == pytest.approx(112.5)

    def test_barrier_dependencies_respected(self):
        engine = SimEngine()
        cluster = SharedCluster(engine)
        trace = Trace("chain")
        trace.add("hdfs_scan", "hdfs_scan", 30.0)
        trace.add("bf_send", "bloom", 5.0, after=["hdfs_scan"])
        run = schedule_trace(engine, cluster, trace, chunks=4)
        engine.run()
        assert run.timings["bf_send"].start == pytest.approx(30.0)

    def test_rejects_bad_arguments(self):
        engine = SimEngine()
        with pytest.raises(ServiceError):
            SharedCluster(engine, edw_slots=0)
        cluster = SharedCluster(engine)
        with pytest.raises(ServiceError):
            schedule_trace(engine, cluster, Trace("x"), chunks=0)


# ----------------------------------------------------------------------
# Stream generation
# ----------------------------------------------------------------------
class TestStreams:
    def test_deterministic_and_round_robin(self, paper_workload):
        spec = StreamSpec(num_queries=12, templates=3, tenants=3, seed=5)
        first = generate_query_stream(paper_workload, spec)
        second = generate_query_stream(paper_workload, spec)
        assert first == second
        assert [item.tenant for item in first[:3]] == [
            "tenant-0", "tenant-1", "tenant-2"]
        assert {item.template for item in first} <= {0, 1, 2}
        assert [item.at for item in first] == [
            index * spec.arrival_gap for index in range(12)]

    def test_template_zero_is_the_paper_query(self, paper_workload,
                                              paper_query):
        assert build_template_query(paper_workload, 1.0, 1.0) == paper_query

    def test_bad_factors_rejected(self, paper_workload):
        with pytest.raises(ServiceError):
            build_template_query(paper_workload, 0.0, 1.0)
        with pytest.raises(ServiceError):
            StreamSpec(num_queries=0)
