"""Movement-statistics tests: the quantities behind the paper's Table 1
and the Bloom-filter guarantees inside the algorithms."""

import pytest

from repro import algorithm_by_name
from repro.core.joins.base import JoinStats


@pytest.fixture(scope="module")
def results(loaded_warehouse, paper_query):
    names = ["repartition", "repartition(BF)", "zigzag", "db", "db(BF)",
             "broadcast", "semijoin", "perf"]
    return {
        name: algorithm_by_name(name).run(loaded_warehouse, paper_query)
        for name in names
    }


class TestTable1Shape:
    """Paper Table 1 (sigma_T=0.1, sigma_L=0.4, S_L'=0.1, S_T'=0.2):
    5854/591/591 M tuples shuffled; 165/165/30 M DB tuples sent."""

    def test_bloom_cuts_shuffle_about_10x(self, results):
        plain = results["repartition"].paper_stats().hdfs_tuples_shuffled
        bloomed = results["repartition(BF)"].paper_stats() \
            .hdfs_tuples_shuffled
        assert 7.0 <= plain / bloomed <= 13.0

    def test_zigzag_shuffles_like_repartition_bf(self, results):
        bloomed = results["repartition(BF)"].paper_stats() \
            .hdfs_tuples_shuffled
        zigzag = results["zigzag"].paper_stats().hdfs_tuples_shuffled
        assert zigzag == pytest.approx(bloomed, rel=0.02)

    def test_zigzag_cuts_db_tuples_about_5x(self, results):
        plain = results["repartition"].paper_stats().db_tuples_sent
        zigzag = results["zigzag"].paper_stats().db_tuples_sent
        assert 3.5 <= plain / zigzag <= 7.0

    def test_absolute_paper_scale_magnitudes(self, results):
        """At 1/50,000 scale the scaled-up counts should land near the
        paper's absolute numbers."""
        paper = results["repartition"].paper_stats()
        assert paper.hdfs_tuples_shuffled == pytest.approx(5.85e9, rel=0.15)
        assert paper.db_tuples_sent == pytest.approx(1.65e8, rel=0.15)
        zigzag = results["zigzag"].paper_stats()
        assert zigzag.hdfs_tuples_shuffled == pytest.approx(5.9e8, rel=0.25)
        assert zigzag.db_tuples_sent == pytest.approx(3.0e7, rel=0.35)


class TestBloomGuarantees:
    def test_bloom_only_prunes(self, results):
        """BF pruning keeps a subset of the predicate survivors."""
        for name in ("repartition(BF)", "zigzag", "db(BF)"):
            stats = results[name].stats
            assert stats.hdfs_rows_after_bloom <= \
                stats.hdfs_rows_after_predicates

    def test_bloom_fp_rate_bounded(self, results):
        """Tuples surviving BF_DB are at most S_L' + a few % of L'."""
        stats = results["zigzag"].stats
        survival = (stats.hdfs_rows_after_bloom
                    / stats.hdfs_rows_after_predicates)
        assert survival <= 0.1 + 0.08

    def test_exact_semijoin_never_more_than_bloom(self, results):
        """The exact filter is a lower bound on the Bloom-filtered one."""
        exact = results["semijoin"].stats.hdfs_tuples_shuffled
        bloomed = results["repartition(BF)"].stats.hdfs_tuples_shuffled
        assert exact <= bloomed

    def test_perf_sends_fewer_db_tuples_than_semijoin(self, results):
        assert results["perf"].stats.db_tuples_sent <= \
            results["semijoin"].stats.db_tuples_sent

    def test_zigzag_sent_at_most_bloom_fp_above_exact(self, results):
        exact = results["perf"].stats.db_tuples_sent
        zigzag = results["zigzag"].stats.db_tuples_sent
        assert exact <= zigzag <= exact * 1.15 + 5


class TestAccountingConsistency:
    def test_scan_volumes_equal_across_hdfs_side_joins(self, results):
        base = results["repartition"].stats.hdfs_rows_scanned
        for name in ("repartition(BF)", "zigzag", "broadcast"):
            assert results[name].stats.hdfs_rows_scanned == base

    def test_db_side_join_moves_hdfs_rows_to_db(self, results):
        stats = results["db"].stats
        assert stats.hdfs_tuples_to_db == stats.hdfs_rows_after_bloom
        assert stats.hdfs_tuples_shuffled == 0
        assert stats.db_tuples_sent == 0

    def test_broadcast_copies_recorded(self, results):
        stats = results["broadcast"].stats
        assert stats.db_send_copies == 30
        assert stats.hdfs_tuples_shuffled == 0

    def test_bloom_bytes_at_paper_scale(self, results):
        """BF_DB multicast to 30 workers: 30 x 16 MB = 480 MB; zigzag
        adds the BF_H merge and broadcast."""
        bf_bytes = results["repartition(BF)"].paper_stats().bloom_bytes_moved
        assert bf_bytes == pytest.approx(30 * 16 * 1024 * 1024, rel=0.01)
        zz_bytes = results["zigzag"].paper_stats().bloom_bytes_moved
        assert zz_bytes == pytest.approx(
            (30 + 29 + 30) * 16 * 1024 * 1024, rel=0.01
        )

    def test_join_output_identical_across_algorithms(self, results):
        outputs = {
            name: result.stats.join_output_tuples
            for name, result in results.items()
        }
        assert len(set(outputs.values())) == 1, outputs

    def test_result_rows_match_result_table(self, results):
        for result in results.values():
            assert result.stats.result_rows == result.result.num_rows


class TestJoinStatsScaling:
    def test_scaled_multiplies_counts_not_bloom_bytes(self):
        stats = JoinStats(
            hdfs_tuples_shuffled=100.0,
            db_tuples_sent=10.0,
            bloom_bytes_moved=16.0,
            db_send_copies=30.0,
        )
        scaled = stats.scaled(1000.0)
        assert scaled.hdfs_tuples_shuffled == 100_000.0
        assert scaled.db_tuples_sent == 10_000.0
        assert scaled.bloom_bytes_moved == 16.0
        assert scaled.db_send_copies == 30.0

    def test_summary_mentions_algorithm(self, results):
        assert "zigzag" in results["zigzag"].summary()
