"""Chaos battery: every join algorithm under injected faults.

Differential testing against the single-node oracle
(:mod:`repro.testkit.oracle`): whatever the fault plan does — crashes
mid-scan, crashes mid-shuffle, stragglers, lossy links — every
algorithm must return the oracle's row multiset, scan every HDFS row
exactly once (committed work never double-counts), and pay a
non-negative recovery overhead on the simulated clock.

The tier-1 smoke set runs each fault class on two representative
algorithms; the full ``algorithms x faults`` grid is ``slow``-marked and
runs in the chaos CI job.
"""

from __future__ import annotations

import pytest

from repro import algorithm_by_name
from repro.errors import FaultError, QueryAbortError, WorkerCrashError
from repro.faults import FaultPlan
from repro.service import AdmissionConfig, QueryService, ServiceConfig
from repro.testkit import oracle
from tests.conftest import build_test_warehouse

#: name -> fault spec; one entry per fault class the engine recovers from.
FAULT_SPECS = {
    "crash-scan": "crash:w7@scan",
    "crash-shuffle": "crash:w3@shuffle",
    "double-crash": "crash:w7@scan,crash:w12@scan",
    "straggler": "slow:w5x4",
    "drop-shuffle": "drop:shuffle:0.05",
    "dup-shuffle": "dup:shuffle:0.1",
    "drop-transfer": "drop:transfer:0.1",
    "combo": "crash:w7@scan,slow:w5x4,drop:shuffle:0.02",
}

ALL_ALGORITHMS = [
    "db", "db(BF)", "broadcast", "repartition", "repartition(BF)",
    "zigzag", "zigzag-db", "semijoin", "perf",
]
#: Tier-1 representatives: one HDFS-side shuffling algorithm and one
#: database-side algorithm with a Bloom filter round trip.
SMOKE_ALGORITHMS = ["zigzag", "db(BF)"]


@pytest.fixture(scope="module")
def chaos_warehouse(paper_workload):
    """A private warehouse the chaos tests may arm and disarm."""
    return build_test_warehouse(paper_workload)


@pytest.fixture(scope="module")
def reference_rows(paper_workload, paper_query):
    """Canonical (sorted) oracle rows — compare via canonical_rows."""
    return oracle.canonical_rows(oracle.oracle_execute(
        paper_workload.t_table, paper_workload.l_table, paper_query
    ))


@pytest.fixture(scope="module")
def baselines(chaos_warehouse, paper_query):
    """Fault-free runs of every algorithm, for differential comparison."""
    return {
        name: algorithm_by_name(name).run(chaos_warehouse, paper_query)
        for name in ALL_ALGORITHMS
    }


def run_with_faults(warehouse, query, algorithm, spec, seed=11):
    """Run one algorithm under a fault plan; always disarm after."""
    injector = warehouse.arm_faults(FaultPlan.from_spec(spec, seed=seed))
    try:
        result = algorithm_by_name(algorithm).run(warehouse, query)
    finally:
        warehouse.disarm_faults()
    return result, injector


def check_differential(result, baseline, reference_rows):
    """The three chaos invariants, shared by smoke and full grids."""
    assert oracle.canonical_rows(result.result) == reference_rows
    # Exactly-once: committed scan work matches the fault-free run even
    # though crashes discarded partial output and blocks were re-dealt.
    assert result.stats.hdfs_rows_scanned == \
        baseline.stats.hdfs_rows_scanned
    assert result.total_seconds >= baseline.total_seconds - 1e-9


class TestChaosSmoke:
    """Tier-1: every fault class on two representative algorithms."""

    @pytest.mark.parametrize("fault", sorted(FAULT_SPECS))
    @pytest.mark.parametrize("algorithm", SMOKE_ALGORITHMS)
    def test_differential(self, chaos_warehouse, paper_query,
                          reference_rows, baselines, algorithm, fault):
        result, _ = run_with_faults(
            chaos_warehouse, paper_query, algorithm, FAULT_SPECS[fault])
        check_differential(result, baselines[algorithm], reference_rows)


@pytest.mark.slow
class TestChaosFullGrid:
    """The full algorithms x faults grid (chaos CI job)."""

    @pytest.mark.parametrize("fault", sorted(FAULT_SPECS))
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_differential(self, chaos_warehouse, paper_query,
                          reference_rows, baselines, algorithm, fault):
        result, _ = run_with_faults(
            chaos_warehouse, paper_query, algorithm, FAULT_SPECS[fault])
        check_differential(result, baselines[algorithm], reference_rows)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_seed_sweep_lossy_links(self, chaos_warehouse, paper_query,
                                    reference_rows, baselines, seed):
        result, _ = run_with_faults(
            chaos_warehouse, paper_query, "repartition",
            "drop:shuffle:0.05,dup:shuffle:0.05", seed=seed)
        check_differential(result, baselines["repartition"],
                           reference_rows)


class TestRecoveryAccounting:
    def test_scan_crash_discards_and_reassigns(self, chaos_warehouse,
                                               paper_query, baselines,
                                               reference_rows):
        result, injector = run_with_faults(
            chaos_warehouse, paper_query, "zigzag", "crash:w7@scan")
        check_differential(result, baselines["zigzag"], reference_rows)
        counters = injector.counters()
        assert counters["crashes"] == 1
        assert counters["blocks_reassigned"] > 0
        assert result.stats.hdfs_rows_discarded > 0
        # The recovery landed on the trace and stretched the makespan.
        recovery = [p for p in result.trace if p.kind == "recovery"]
        assert recovery, "crash recovery must appear on the trace"
        assert result.total_seconds > baselines["zigzag"].total_seconds

    def test_same_plan_same_seed_is_bit_identical(self, chaos_warehouse,
                                                  paper_query):
        spec = "crash:w7@scan,drop:shuffle:0.05"
        first, first_injector = run_with_faults(
            chaos_warehouse, paper_query, "repartition", spec)
        second, second_injector = run_with_faults(
            chaos_warehouse, paper_query, "repartition", spec)
        assert first.result.to_rows() == second.result.to_rows()
        assert first.total_seconds == second.total_seconds
        assert first_injector.fired == second_injector.fired
        assert first_injector.counters() == second_injector.counters()

    def test_duplicates_are_suppressed(self, chaos_warehouse, paper_query,
                                       baselines, reference_rows):
        result, injector = run_with_faults(
            chaos_warehouse, paper_query, "repartition", "dup:shuffle:0.2")
        check_differential(result, baselines["repartition"],
                           reference_rows)
        assert injector.counters()["duplicates_suppressed"] > 0

    def test_straggler_speculation(self, chaos_warehouse, paper_query,
                                   baselines, reference_rows):
        result, injector = run_with_faults(
            chaos_warehouse, paper_query, "zigzag", "slow:w5x4")
        check_differential(result, baselines["zigzag"], reference_rows)
        assert injector.counters()["speculations"] == 1

    def test_aggressive_loss_exhausts_retry_budget(self, chaos_warehouse,
                                                   paper_query):
        with pytest.raises(FaultError):
            run_with_faults(chaos_warehouse, paper_query,
                            "repartition", "drop:shuffle:0.9")

    def test_crashing_every_worker_is_unrecoverable(self, paper_workload,
                                                    paper_query):
        warehouse = build_test_warehouse(paper_workload)
        spec = ",".join(
            f"crash:w{worker}@scan"
            for worker in range(warehouse.jen.num_workers)
        )
        warehouse.arm_faults(FaultPlan.from_spec(spec))
        try:
            with pytest.raises(WorkerCrashError):
                algorithm_by_name("zigzag").run(warehouse, paper_query)
        finally:
            warehouse.disarm_faults()


class TestServiceReAdmission:
    @staticmethod
    def _service(warehouse, fault_retries=1):
        return QueryService(warehouse, ServiceConfig(
            admission=AdmissionConfig(slots=4, max_queue=64,
                                      queue_timeout=1e9,
                                      shed_fraction=None),
            enable_result_cache=False,
            enable_bloom_cache=False,
            enable_feedback=False,
            fault_retries=fault_retries,
        ))

    def test_abort_is_re_admitted_once(self, paper_workload, paper_query,
                                       reference_rows):
        warehouse = build_test_warehouse(paper_workload)
        warehouse.arm_faults(FaultPlan.from_spec("abort:scan:1"))
        try:
            service = self._service(warehouse)
            outcome = service.execute(paper_query, algorithm="zigzag")
        finally:
            warehouse.disarm_faults()
        assert outcome.status == "ok"
        assert outcome.fault_retries_used == 1
        assert oracle.canonical_rows(outcome.result) == reference_rows
        assert service.metrics.counter("service.fault_retries").value == 1

    def test_persistent_abort_fails_with_typed_error(self, paper_workload,
                                                     paper_query):
        warehouse = build_test_warehouse(paper_workload)
        warehouse.arm_faults(FaultPlan.from_spec("abort:scan:5"))
        try:
            service = self._service(warehouse, fault_retries=2)
            outcome = service.execute(paper_query, algorithm="zigzag")
        finally:
            warehouse.disarm_faults()
        assert outcome.status == "failed"
        assert outcome.fault_retries_used == 2
        assert "QueryAbortError" in outcome.error
        assert service.metrics.counter("service.query_failed").value == 1

    def test_abort_error_is_typed(self, paper_workload, paper_query):
        warehouse = build_test_warehouse(paper_workload)
        warehouse.arm_faults(FaultPlan.from_spec("abort:join:1"))
        try:
            with pytest.raises(QueryAbortError) as excinfo:
                algorithm_by_name("zigzag").run(warehouse, paper_query)
        finally:
            warehouse.disarm_faults()
        assert excinfo.value.phase == "join"


class TestFailWorkerGuard:
    def test_fail_worker_mid_scan_rejected_without_plan(self,
                                                        paper_workload,
                                                        paper_query):
        """Regression: ad-hoc fail_worker during a scan must be refused.

        Killing a worker underneath an in-flight scan (e.g. from a
        filesystem read hook) used to corrupt the work queue; now the
        engine demands the crash go through an armed FaultPlan so the
        recovery path runs.
        """
        warehouse = build_test_warehouse(paper_workload)
        original = warehouse.hdfs.read_block
        state = {"fired": False}

        def sabotage(*args, **kwargs):
            if not state["fired"]:
                state["fired"] = True
                warehouse.jen.fail_worker(7)
            return original(*args, **kwargs)

        warehouse.hdfs.read_block = sabotage
        try:
            with pytest.raises(FaultError, match="armed FaultPlan"):
                warehouse.jen.distributed_scan(paper_query)
        finally:
            warehouse.hdfs.read_block = original

    def test_fail_worker_between_queries_still_allowed(self,
                                                       paper_workload,
                                                       paper_query,
                                                       reference_rows):
        warehouse = build_test_warehouse(paper_workload)
        warehouse.jen.fail_worker(7)
        result = algorithm_by_name("zigzag").run(warehouse, paper_query)
        assert oracle.canonical_rows(result.result) == reference_rows
